// Package dbt implements the dynamic binary translator: a block-at-a-time
// translation engine with a sharded code cache, translation-block
// chaining, per-block guest-register allocation, a rule-based fast path
// fed by the (optionally parameterized) rule store, a TCG emulation
// fallback for everything the rules do not cover, and condition-flag
// delegation at rule-application time.
//
// Execution follows QEMU's dispatcher design: blocks are translated
// once into the 16-shard code cache, and block exits with statically
// known successors are lazily patched into direct links so chained
// execution skips the dispatcher entirely (Config.NoChain restores the
// dispatch-every-block ablation baseline). Optional background workers
// (Config.TranslateWorkers) pre-translate successor blocks from a
// memory snapshot.
//
// Every evaluation metric — dynamic coverage, dispatch/chain traffic,
// category-tagged host instruction counts — is counted on atomic
// internal/obs counters registered per engine; Run returns them as a
// Stats delta snapshot, and LiveStats or a shared Config.Metrics
// registry (cmd/paradbt -metrics-addr) reads them safely mid-run.
// Translate/lookup/chain/invalidate latency histograms and the
// execution-trace ring (Config.Trace) are recorded only while
// obs.On(), keeping the disabled hot path at a single atomic load
// (BenchmarkObsDisabledOverhead).
package dbt

import (
	"fmt"
	"os"
	"time"

	"paramdbt/internal/analysis"
	"paramdbt/internal/artifact"
	"paramdbt/internal/backend"
	"paramdbt/internal/env"
	"paramdbt/internal/guard"
	"paramdbt/internal/guest"
	"paramdbt/internal/host"
	"paramdbt/internal/mem"
	"paramdbt/internal/obs"
	"paramdbt/internal/rule"
)

// HaltPC is the sentinel next-PC meaning the guest executed HLT.
const HaltPC = 0xffffffff

// maxBlockInsts caps translation-block length (long straight-line runs
// occur in big generated functions).
const maxBlockInsts = 512

// Config selects the translation strategy; the experiment harness builds
// one Engine per paper configuration.
type Config struct {
	// Rules is the rule store (nil for the pure-QEMU baseline).
	Rules *rule.Store
	// Backend is the host backend the engine translates for: register
	// policy, instruction emitter, encoder and finalize pass (see
	// internal/backend). Nil selects backend.Default(), i.e. x86 or the
	// PARAMDBT_BACKEND environment override. New rekeys the rule store
	// and namespaces the code cache by the backend id, so stores and
	// caches never alias across backends.
	Backend backend.Backend
	// DelegateFlags enables condition-flag delegation and the use of
	// derived flag-setting rules (the paper's "condition" factor).
	DelegateFlags bool
	// FlagWindow is the maximum setter-to-consumer distance (in guest
	// instructions) delegation accepts; the paper fixes 3.
	FlagWindow int
	// NoBlockRegAlloc disables per-block guest-register allocation:
	// every guest register access goes through its CPUState slot. Used
	// by the register-allocation ablation bench (Table II's data-transfer
	// overhead discussion).
	NoBlockRegAlloc bool
	// ManualABI adds the hand-written translations for the instructions
	// learning can never cover (push/pop/clz/mla/umla, and the pure-stub
	// control terminators) — the paper's §V-B2 path to ~100% coverage.
	ManualABI bool
	// TranslateWorkers starts this many background translation workers
	// for the duration of each Run; they speculatively translate direct
	// successor blocks discovered at block-emit time (0 = off). Results
	// are deterministic: workers only pre-warm the code cache.
	TranslateWorkers int
	// NoChain disables translation-block chaining, forcing every block
	// boundary back through the dispatcher — the ablation baseline for
	// BenchmarkDispatchChaining.
	NoChain bool
	// HotThreshold enables hot-trace superblock formation: a block whose
	// entry count crosses the threshold is grown into a trace along its
	// hottest recorded direct-link edges and retranslated as one
	// superblock with trace-wide register allocation, cross-block dead
	// flag-store elimination and side-exit stubs (see superblock.go and
	// docs/ARCHITECTURE.md "Hot traces & superblocks"). 0 — the default —
	// disables formation entirely; the dispatch loop then skips all hot
	// counting, so the feature's cold cost is zero. Formation needs the
	// chaining profile, so NoChain also disables it.
	HotThreshold uint64
	// TraceMaxBlocks caps trace length in basic blocks (default 8 when
	// HotThreshold is set).
	TraceMaxBlocks int
	// TraceBudget caps how many traces one engine may form (0 = no
	// cap). Trace translation is paid on the run, so a budget keeps the
	// long tail of barely-hot heads from costing more in translation
	// than their superblocks ever save — the same reason tiered JITs
	// bound their compile queues. The earliest heads to cross
	// HotThreshold claim the budget, which on loopy workloads are the
	// hottest ones.
	TraceBudget int
	// SyncTraces forms superblocks synchronously on the dispatch loop
	// instead of handing them to the background builder goroutine.
	// Deterministic — the superblock is installed before the head
	// executes again — but puts trace translation latency on the run's
	// critical path, which on short workloads costs more than the
	// superblocks save. Tests that assert on formation timing use it;
	// production runs should leave it off.
	SyncTraces bool
	// TraceBlock, when non-nil, is called with the guest pc of every
	// block entered, in execution order (debug/test hook; the chaining
	// correctness test reconstructs instruction traces from it).
	TraceBlock func(pc uint32)
	// Metrics, when non-nil, is the registry the engine registers its
	// counters and latency histograms in; nil gives the engine a private
	// registry (read it back via Engine.Metrics). Share a registry (e.g.
	// obs.Default) to expose a live engine on a /metrics endpoint; do
	// not share one across concurrently running engines whose per-run
	// Stats deltas must stay separable.
	Metrics *obs.Registry
	// Trace, when non-nil, records every block transition (dispatch vs
	// chained), demand translation and invalidation into the ring; the
	// retained tail is dumped to stderr if Run panics, and on demand via
	// TraceRing.Dump / the -metrics-addr /trace endpoint.
	Trace *obs.TraceRing

	// ShadowRate enables shadow differential verification: each block
	// execution is, with this probability, re-executed on the reference
	// interpreter over a pre-block snapshot and compared (see
	// docs/ROBUSTNESS.md). 0 disables steady-state sampling; 1 verifies
	// everything. Divergences are recovered (the interpreter result
	// wins), blamed rules are quarantined and their blocks purged.
	ShadowRate float64
	// ShadowFirstN always verifies the first N executions of every
	// block regardless of ShadowRate (defaults to 1 whenever shadow
	// verification is on — fresh translations are the risky ones).
	ShadowFirstN uint64
	// ShadowSeed seeds the sampling RNG for reproducible runs.
	ShadowSeed int64
	// ShadowElevatedRate is the sampling probability for blocks that
	// contain at least one rule ShadowElevate flags — typically rules the
	// static auditor left inconclusive (internal/analysis). Zero leaves
	// flagged blocks at ShadowRate.
	ShadowElevatedRate float64
	// ShadowElevate marks rule templates whose blocks should be sampled
	// at ShadowElevatedRate instead of ShadowRate. Evaluated once per
	// template at translation time (see analysis.StoreReport.ElevateFunc
	// for the canonical source).
	ShadowElevate func(*rule.Template) bool
	// AdaptiveShadow enables the per-tenant adaptive guard controller
	// (guard.Controller, docs/SERVING.md): the effective shadow rate
	// starts at ShadowRate and decays exponentially with consecutive
	// verified-clean checks, snapping back to ShadowRate on any
	// divergence or quarantine event. ShadowFirstN and
	// ShadowElevatedRate are untouched — fresh translations and
	// audit-flagged rules keep their own verification floors.
	AdaptiveShadow bool
	// ShadowMinRate is the adaptive controller's rate floor (default
	// 0.01). Only read when AdaptiveShadow is set.
	ShadowMinRate float64
	// ShadowHalfLife is how many consecutive clean checks halve the
	// adaptive rate (default 64). Only read when AdaptiveShadow is set.
	ShadowHalfLife uint64

	// Service, when non-nil, attaches the engine to a shared translation
	// service (see Service and docs/SERVING.md): demand misses are
	// resolved through the service's single-flight batched queue and the
	// engine adopts shared prototype translations instead of translating
	// locally. The attachment is refused — silently, the engine then
	// behaves exactly as without it — when the configurations disagree
	// on anything translation-relevant (backend, rule store, codegen
	// knobs) or when fault injection is configured (injected faults must
	// stay inside one engine). Any service error (overload, shutdown,
	// translation failure) falls back to the local translation path.
	Service *Service
	// ArtifactDir, when non-empty, points the engine at a warm-start
	// artifact store (internal/artifact; docs/PERSISTENCE.md). New
	// applies the store's quarantine shard to the rule table, then
	// restores the translated blocks and superblock traces recorded for
	// this exact (guest code, backend, rule table, engine version) key —
	// through the normal translation path, so restored code is as
	// verified as demand-translated code. A Run ending in a clean HLT
	// publishes the cache contents and merges run-time quarantine
	// demotions back into the shard. Every failure mode degrades to a
	// cold start (see Engine.WarmStats).
	ArtifactDir string

	// InterpFallback lets Run execute a block on the reference
	// interpreter when translation fails persistently, instead of
	// aborting the run. New enables it automatically whenever shadow
	// verification or fault injection is configured.
	InterpFallback bool
	// Faults, when non-nil, injects faults into translation, the code
	// cache and the speculative workers (see internal/guard/faultinject
	// and the FaultInjector interface). An injector that additionally
	// implements CodePokes(n) gets to write guest code words before each
	// block entry — the deterministic SMC campaigns (see smc.go).
	Faults FaultInjector

	// NoWriteTrack disables guest-write tracking, the self-modifying-code
	// safety layer (see smc.go and docs/ROBUSTNESS.md). Tracking is on by
	// default and costs one pointer compare per guest store while no code
	// page is dirty; this switch exists to measure that cost and must
	// never be set for a guest that may write its own code.
	NoWriteTrack bool

	// Peephole enables the post-Finalize peephole optimizer for backends
	// that implement backend.Optimizer (today: risc). An optimized
	// stream is installed only when the translation validator
	// (internal/analysis.ValidateBlock) proves it equivalent to the
	// guest block; anything else falls back to the finalized stream and
	// counts a dbt.validate_fallbacks. See docs/ANALYSIS.md
	// "Translation validation".
	Peephole bool
	// Validate selects translation-validation coverage: "" or "off"
	// validates nothing beyond what Peephole requires, "optimized" is
	// the explicit spelling of that default, and "all" validates every
	// finalized translation (blocks and superblocks), recording per-
	// verdict analysis.validate_* counters — the experiments harness'
	// -validate mode.
	Validate string
	// ValidateHook, when non-nil, observes every translation-validation
	// report the engine produces (peephole candidates and Validate:"all"
	// installs alike). cmd/codeaudit uses it to build its per-block
	// report; it must not retain the host block beyond the call.
	ValidateHook func(rep *analysis.BlockReport)
}

// Stats is a snapshot of the evaluation metrics. The live counts are
// atomic obs counters owned by the engine (see metrics.go); Run returns
// the delta accumulated during that run, and LiveStats reads the
// engine-lifetime totals at any time, including concurrently with Run.
type Stats struct {
	GuestExec   uint64 // dynamic guest instructions
	RuleCovered uint64 // of which rule-translated (dynamic coverage)
	Blocks      int    // distinct blocks executed (first entries)
	SeqRuleUses uint64 // dynamic guest insts covered by multi-insn rules

	// Dispatches counts dispatcher round trips: block entries that went
	// through the code-cache lookup in the Run loop. ChainedExits counts
	// block transitions that instead followed a patched direct link from
	// the previous block, skipping the dispatcher. Their sum is the total
	// number of block entries.
	Dispatches   uint64
	ChainedExits uint64

	// Translations counts demand translations performed during the run.
	// A warm-started engine restores its code cache in New, before any
	// Run begins, so this stays near zero on a warm replay — the
	// headline number the warm-start bench gates on (BENCH_warmstart).
	Translations uint64

	// Hot-trace superblock counters (zero unless Config.HotThreshold is
	// set). TracesFormed counts traces promoted to superblocks,
	// SuperblockExecs the block entries that ran a superblock (a subset
	// of Dispatches+ChainedExits), SideExits the superblock runs that
	// left the trace early through a side-exit stub.
	TracesFormed    uint64
	SuperblockExecs uint64
	SideExits       uint64

	// Self-modifying-code counters (zero unless guest code pages are
	// written; see docs/ROBUSTNESS.md "Self-modifying code").
	// SMCInvalidations counts translations fenced out after guest writes
	// into translated pages, SMCSelfAborts executions aborted because
	// they stored into their own guest bytes, SBBuilderPanics background
	// trace-formation panics absorbed (the builder demotes the trace to
	// per-block execution instead of dying).
	SMCInvalidations uint64
	SMCSelfAborts    uint64
	SBBuilderPanics  uint64

	// Translation-validation counters (zero unless Config.Peephole or
	// Config.Validate is set). BlocksValidated counts translations whose
	// installed stream the validator proved equivalent to the guest
	// block; ValidateFallbacks counts validations that did not prove
	// (inconclusive or refuted) — for optimized streams that means the
	// engine discarded the optimization and kept the finalized stream.
	BlocksValidated   uint64
	ValidateFallbacks uint64

	// UncoveredOps breaks down emulated instructions by opcode — the
	// analysis behind the paper's "seven uncoverable instructions".
	UncoveredOps map[guest.Op]uint64

	// Guarded-execution counters (zero unless the guard layer is on;
	// see docs/ROBUSTNESS.md). ShadowChecks counts verified block
	// executions, Divergences the ones that disagreed with the
	// reference interpreter. QuarantinedRules counts rules demoted
	// during the run, PanicsRecovered translator panics converted to
	// quarantine-and-retry, InterpFallbacks blocks executed by the
	// reference interpreter after persistent translation failure.
	ShadowChecks     uint64
	Divergences      uint64
	QuarantinedRules uint64
	PanicsRecovered  uint64
	InterpFallbacks  uint64

	// RateSnaps counts adaptive-controller snap-backs to the base
	// shadow rate (divergence or quarantine while AdaptiveShadow is
	// on; always zero otherwise).
	RateSnaps uint64
}

// ChainRate returns the fraction of block transitions that bypassed the
// dispatcher via block chaining.
func (s Stats) ChainRate() float64 {
	total := s.Dispatches + s.ChainedExits
	if total == 0 {
		return 0
	}
	return float64(s.ChainedExits) / float64(total)
}

// SuperblockShare returns the fraction of block entries that ran a
// hot-trace superblock.
func (s Stats) SuperblockShare() float64 {
	total := s.Dispatches + s.ChainedExits
	if total == 0 {
		return 0
	}
	return float64(s.SuperblockExecs) / float64(total)
}

// SideExitRate returns the fraction of superblock executions that left
// the trace early through a side exit (high rates mean the profile that
// formed the trace no longer matches execution).
func (s Stats) SideExitRate() float64 {
	if s.SuperblockExecs == 0 {
		return 0
	}
	return float64(s.SideExits) / float64(s.SuperblockExecs)
}

// Coverage returns the dynamic coverage fraction.
func (s Stats) Coverage() float64 {
	if s.GuestExec == 0 {
		return 0
	}
	return float64(s.RuleCovered) / float64(s.GuestExec)
}

// Engine is one DBT instance bound to a memory image.
type Engine struct {
	Cfg   Config
	Mem   *mem.Memory
	CPU   *host.CPU
	cache *codeCache
	tx    txctx     // translation scratch (Run goroutine only)
	spec  *specPool // live while Run executes with TranslateWorkers > 0
	met   *engineMetrics
	guard *guardState // non-nil when shadow verification is configured

	// svc/tnt are the shared translation service and this engine's
	// tenant registration (nil when Config.Service is unset or the
	// attachment was refused). The SMC fence detaches mid-run — the
	// tenant's code no longer matches its registered snapshot — after
	// which the engine translates locally (see smcFence).
	svc *Service
	tnt *tenant

	// Superblock bookkeeping (Run goroutine only): sbIndex maps every
	// constituent pc of an installed superblock to the superblocks
	// covering it, so Invalidate on a mid-trace pc tears the whole trace
	// down; sbBan marks heads whose superblock shadow-diverged —
	// formation is never retried there (see shadowCheckSB).
	sbIndex map[uint32][]*tblock
	sbBan   map[uint32]bool
	// sbb is the background superblock builder, started lazily at the
	// first hot head (nil while no trace has gone hot, and always nil
	// under Config.SyncTraces). cacheGen counts invalidation events
	// (Invalidate, quarantine purges); a builder result stamped with an
	// older generation was translated from state that no longer holds
	// and is discarded instead of installed.
	sbb      *sbBuilder
	cacheGen uint64
	// sbSpent counts traces formed plus builder jobs in flight against
	// Config.TraceBudget (Run goroutine only).
	sbSpent int

	// smcOn mirrors !Config.NoWriteTrack: guest-write tracking is
	// installed on Mem and the dispatch loop runs the SMC fence and
	// self-abort machinery (see smc.go).
	smcOn bool

	// be is the resolved host backend; blockRegs/tempPool cache its
	// register policy so the translation hot path never re-queries it.
	be        backend.Backend
	blockRegs []host.Reg
	tempPool  []host.Reg

	// Warm-start persistence (nil/zero unless Config.ArtifactDir is
	// set): art is the open store, artKey the engine's four-component
	// lookup key, warm the restore outcome (see artifact.go).
	art    *artifact.Store
	artKey artifact.Key
	warm   WarmStats
}

// tblock is one cached translation. The hb/insts/counter fields are
// immutable after construction (safe to publish through the cache); the
// link and seen fields are owned by the goroutine driving Run.
type tblock struct {
	hb        *host.Block
	insts     []guest.Inst // decoded guest block, reused instead of re-decoding
	nGuest    uint64
	nCovered  uint64
	nSeq      uint64
	uncovered []guest.Op

	// rules lists the distinct rule templates whose host code this
	// block contains — the provenance the guard layer's blame isolation
	// walks when a shadow-verification divergence implicates the block.
	// flagsExact reports that the block materializes every NZCV update
	// into the CPUState words (no delegation, no branch-tail rule), so
	// the shadow verifier may compare flags. Both are immutable after
	// construction; execs counts executions and is owned by the
	// goroutine driving Run, like seen.
	// elevated marks blocks containing a rule Config.ShadowElevate
	// flagged; the shadow sampler verifies them at ShadowElevatedRate.
	rules      []*rule.Template
	flagsExact bool
	elevated   bool
	execs      uint64

	// links are the block's direct-exit slots (branch target and/or
	// fallthrough), patched lazily as targets get translated so chained
	// execution skips the dispatcher. incoming records links in other
	// blocks that point here, so Invalidate can tear them down safely.
	// seen marks the first execution (drives Stats.Blocks).
	links    []blockLink
	incoming []*blockLink
	seen     bool

	// Superblock state, all owned by the goroutine driving Run: hot
	// counts entries while formation is enabled (Config.HotThreshold),
	// sbTries backs off repeated failed formation attempts at this head
	// geometrically, and sb — non-nil only on a superblock translation —
	// carries the trace-level bookkeeping (see superblock.go).
	hot     uint64
	sbTries uint8
	sb      *sbMeta

	// SMC metadata (see smc.go), set once on the Run goroutine before
	// the translation first executes: smcRanges are the guest [lo,hi)
	// byte ranges the translation was decoded from (one per superblock
	// constituent), hasStores whether it contains guest store
	// instructions, smcDone that both are computed and the ranges'
	// pages registered with the write tracker.
	hasStores bool
	smcDone   bool
	smcRanges [][2]uint32
}

// blockLink is one direct-exit slot: the static successor pc plus the
// lazily patched pointer to its translation (nil until linked). hits
// counts how often execution followed the edge — the profile trace
// formation grows along (recorded only while HotThreshold is set).
type blockLink struct {
	target uint32
	to     *tblock
	hits   uint64
}

// follow returns the linked translation for next, if already patched.
func (tb *tblock) follow(next uint32) *tblock {
	for i := range tb.links {
		if tb.links[i].target == next {
			return tb.links[i].to
		}
	}
	return nil
}

// bumpHit records that execution followed the edge to next — the
// profile trace formation reads. Called only while HotThreshold is set.
func (tb *tblock) bumpHit(next uint32) {
	for i := range tb.links {
		if tb.links[i].target == next {
			tb.links[i].hits++
			return
		}
	}
}

// patch records to as the translation of next in the matching link
// slot(s) and registers the back-reference for safe teardown. It
// reports how many slots it patched.
func (tb *tblock) patch(next uint32, to *tblock) int {
	n := 0
	for i := range tb.links {
		l := &tb.links[i]
		if l.target == next && l.to == nil {
			l.to = to
			to.incoming = append(to.incoming, l)
			n++
		}
	}
	return n
}

// New creates an engine over the given memory. The CPUState block and
// host stack are established per the env layout.
func New(m *mem.Memory, cfg Config) *Engine {
	if cfg.FlagWindow == 0 {
		cfg.FlagWindow = 3
	}
	if cfg.HotThreshold > 0 && cfg.TraceMaxBlocks <= 0 {
		cfg.TraceMaxBlocks = defaultTraceMaxBlocks
	}
	shadowOn := cfg.ShadowRate > 0 || cfg.ShadowFirstN > 0
	if shadowOn && cfg.ShadowFirstN == 0 {
		cfg.ShadowFirstN = 1
	}
	if shadowOn || cfg.Faults != nil {
		// Guarded runs degrade gracefully instead of aborting.
		cfg.InterpFallback = true
	}
	be := cfg.Backend
	if be == nil {
		be = backend.Default()
		cfg.Backend = be
	}
	if cfg.Rules != nil {
		// Rekey retrieval fingerprints (and hence every MissSet memo)
		// into the backend's namespace; quarantine state is
		// backend-neutral and survives the rekey.
		cfg.Rules.SetBackendID(be.ID())
	}
	cpu := host.NewCPU(m)
	cpu.R[host.EBP] = env.StateBase
	cpu.R[host.ESP] = env.HostStackTop
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.Trace != nil {
		reg.SetTraceRing(cfg.Trace)
	}
	e := &Engine{Cfg: cfg, Mem: m, CPU: cpu, cache: newCodeCache(be.ID()), met: newEngineMetrics(reg),
		be: be, blockRegs: be.BlockRegs(), tempPool: be.TempPool()}
	if shadowOn {
		e.guard = &guardState{sampler: guard.NewSampler(guard.Policy{
			Rate:         cfg.ShadowRate,
			FirstN:       cfg.ShadowFirstN,
			Seed:         cfg.ShadowSeed,
			ElevatedRate: cfg.ShadowElevatedRate,
		})}
		if cfg.AdaptiveShadow {
			e.guard.ctrl = guard.NewController(guard.ControllerPolicy{
				BaseRate: cfg.ShadowRate,
				MinRate:  cfg.ShadowMinRate,
				HalfLife: cfg.ShadowHalfLife,
			})
			e.guard.sampler.SetRate(e.guard.ctrl.Rate())
		}
	}
	if cfg.Service != nil && cfg.Faults == nil {
		// Attach after the backend/rule setup above so the compatibility
		// check sees resolved values; a refused attachment leaves the
		// engine a plain single-tenant translator.
		if t := cfg.Service.attach(e, m); t != nil {
			e.svc, e.tnt = cfg.Service, t
		}
	}
	// Install write tracking before the warm restore: restored
	// translations register their pages exactly like demand-translated
	// ones.
	e.smcOn = !cfg.NoWriteTrack
	if e.smcOn {
		m.EnableWriteTracking()
	}
	e.initArtifacts()
	return e
}

// Metrics returns the registry holding the engine's counters and
// latency histograms (Config.Metrics, or the engine-private registry).
func (e *Engine) Metrics() *obs.Registry { return e.met.reg }

// LiveStats snapshots the engine-lifetime counter totals. Unlike Run's
// return value it can be read at any time, from any goroutine — the
// counters are atomic. UncoveredOps is not part of the live set (it is
// accumulated per run); the returned map is nil.
func (e *Engine) LiveStats() Stats { return e.met.delta(statsBase{}) }

// SetGuestState writes a guest architectural state into the CPUState.
func (e *Engine) SetGuestState(st *guest.State) { writeGuestState(e.Mem, st) }

// GuestState reads the guest architectural state out of the CPUState.
func (e *Engine) GuestState() *guest.State { return readGuestState(e.Mem) }

// Run executes guest code from entry until HLT, collecting statistics.
// maxHostSteps bounds total host instructions (runaway protection).
//
// Block transitions prefer the chain fast path: when the previous block
// recorded a direct link to the next pc, execution continues straight
// into the linked translation without the dispatcher's cache lookup.
// Links are patched in lazily the first time the dispatcher resolves a
// direct-exit target that has been translated.
func (e *Engine) Run(entry uint32, maxHostSteps uint64) (stats Stats, err error) {
	base := e.met.base()
	uncovered := map[guest.Op]uint64{}
	snapshot := func() Stats {
		st := e.met.delta(base)
		st.UncoveredOps = uncovered
		return st
	}
	// A service-attached tenant never starts a private speculative pool:
	// the service's workers already chase successors for it, shared
	// across every tenant (see Service.enqueueSpec).
	if e.Cfg.TranslateWorkers > 0 && e.svc == nil {
		e.spec = e.startSpec()
		// The SMC fence shuts the pool down mid-run on the first guest
		// code write (its startup snapshot is stale from then on), so the
		// hook must re-check the field.
		defer func() {
			if e.spec != nil {
				e.spec.shutdown()
				e.spec = nil
			}
		}()
	}
	// The superblock builder starts lazily at the first hot head, so the
	// shutdown hook must re-check the field at exit. Jobs still in
	// flight are discarded with the builder and hand their TraceBudget
	// claims back — a later Run on this engine may form those traces.
	defer func() {
		if e.sbb != nil {
			e.sbSpent -= e.sbb.inFlight
			e.sbb.shutdown()
			e.sbb = nil
		}
	}()
	pc := entry
	var prev *tblock
	var curShadow *shadowCtx // pre-block snapshot of the block in flight, if sampled
	// A panic escaping to here (a translator or simulator bug the
	// guarded translation path could not absorb) must not take the
	// process down with partially-applied block effects: unwind to the
	// pre-block snapshot when one exists, leave the architectural PC at
	// the faulting block so the run is resumable, and surface the cause
	// as a typed error (errors.Is(err, ErrTranslatorPanic)).
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if e.Cfg.Trace != nil {
			fmt.Fprintf(os.Stderr, "dbt: panic in Run: %v\n", r)
			e.Cfg.Trace.Dump(os.Stderr)
		}
		e.met.panicsUnrecovered.Inc()
		if curShadow != nil {
			e.Mem.RestoreBelow(curShadow.preMem, env.StateBase)
			writeGuestState(e.Mem, &curShadow.pre)
		}
		e.Mem.Write32(env.StateBase+uint32(env.OffReg(int(guest.PC))), pc)
		stats = snapshot()
		err = &PanicError{PC: pc, Cause: r}
	}()
	// The dispatch loop is the engine's hottest Go code: configuration
	// reads are hoisted out of it, and the host step budget is tracked in
	// a local accumulated from each block's ExitResult instead of calling
	// CPU.Total (three counter loads) twice per iteration.
	noChain := e.Cfg.NoChain
	ring := e.Cfg.Trace
	traceBlock := e.Cfg.TraceBlock
	faults := e.Cfg.Faults
	interpFallback := e.Cfg.InterpFallback
	hotOn := e.Cfg.HotThreshold > 0 && !noChain
	guarded := e.guard != nil
	smcOn := e.smcOn
	var poker codePoker
	if faults != nil {
		poker, _ = faults.(codePoker)
	}
	var entries uint64         // block entries, the ordinal CodePokes keys on
	hostSteps := e.CPU.Total() // budget is engine-lifetime host work
	var fallbackSteps uint64   // interpreter-fallback work, counted against the budget
	for pc != HaltPC {
		// Deterministic SMC fault injection: apply this entry's guest code
		// writes through the tracked store path, so they exercise exactly
		// the machinery a guest store does.
		if poker != nil {
			entries++
			for _, pw := range poker.CodePokes(entries) {
				e.Mem.Write32(pw[0], pw[1])
			}
		}
		// The SMC fence: a store since the last entry dirtied a page
		// holding translated code — invalidate every overlapping
		// translation before following a chain link or dispatching, and
		// break the chain (prev may itself have been invalidated).
		if smcOn && e.Mem.CodeDirty() {
			e.smcFence()
			prev = nil
		}
		// Install any superblocks the background builder finished. Doing
		// this before chain-follow/dispatch means a head installed here is
		// entered through its superblock on this very iteration (installSB
		// repoints the incoming chain links).
		if e.sbb != nil && e.sbb.inFlight > 0 {
			e.drainSB()
		}
		var tb *tblock
		chained := false
		if prev != nil && !noChain {
			if hotOn {
				prev.bumpHit(pc)
			}
			tb = prev.follow(pc)
		}
		if tb != nil {
			chained = true
			e.met.chainedExits.Inc()
		} else {
			if faults != nil {
				if sh, ok := faults.DropCacheShard(); ok {
					e.dropShard(sh)
				}
			}
			e.met.dispatches.Inc()
			var terr error
			tb, terr = e.block(pc)
			if terr != nil {
				if interpFallback {
					next, n, ferr := e.interpFallbackBlock(pc)
					if ferr == nil {
						e.met.interpFallbacks.Inc()
						e.met.guestInsts.Add(n)
						fallbackSteps += n
						if ring != nil {
							ring.Record(obs.EvFallback, pc)
						}
						prev = nil
						pc = next
						continue
					}
				}
				return snapshot(), fmt.Errorf("dbt: translating block at %#x: %w", pc, terr)
			}
			if prev != nil && !noChain {
				if obs.On() {
					t0 := time.Now()
					n := prev.patch(pc, tb)
					e.met.chainNs.ObserveSince(t0)
					e.met.chainPatches.Add(uint64(n))
				} else {
					prev.patch(pc, tb)
				}
			}
		}
		if hotOn && tb.sb == nil {
			tb = e.maybeSuperblock(pc, tb)
		}
		if !tb.seen {
			tb.seen = true
			e.met.blocks.Inc()
		}
		sb := tb.sb
		if ring != nil {
			k := obs.EvDispatch
			if sb != nil {
				k = obs.EvSuperblock
			} else if chained {
				k = obs.EvChained
			}
			ring.Record(k, pc)
		}
		if traceBlock != nil && sb == nil {
			traceBlock(pc)
		}
		if guarded {
			tb.execs++
			if e.guard.sampler.SelectWith(tb.execs, tb.elevated) {
				curShadow = e.beginShadow(tb.execs)
			}
		}
		if hostSteps+fallbackSteps >= maxHostSteps {
			return snapshot(), fmt.Errorf("dbt: host step budget exhausted at pc=%#x", pc)
		}
		if smcOn {
			// Arm self-range detection and the undo journal for this
			// execution (a no-op pair of clears when the translation has no
			// guest stores).
			e.Mem.ArmSMC(tb.hasStores, tb.smcRanges)
		}
		if sb != nil {
			// Arm the exit slot with the full-trace marker; side-exit
			// stubs overwrite it with their seam index (see superblock.go).
			e.Mem.Write32(env.StateBase+env.OffSBExit, uint32(len(sb.pcs)-1))
		}
		res, xerr := e.CPU.Exec(tb.hb, maxHostSteps-hostSteps-fallbackSteps)
		if smcOn && e.Mem.SMCSelfHit() {
			// The translation stored into its own guest bytes: its host
			// code was stale from that store on (this also covers xerr —
			// garbled stale code may fail outright). Roll back, replay on
			// the interpreter to the precise exit, fence, and resume
			// through the dispatcher.
			next, n, aerr := e.smcSelfAbort(tb, pc)
			if aerr != nil {
				return snapshot(), aerr
			}
			hostSteps = e.CPU.Total()
			fallbackSteps += n
			curShadow = nil
			prev = nil
			pc = next
			continue
		}
		if xerr != nil {
			return snapshot(), fmt.Errorf("dbt: executing block at %#x: %w\n%s", pc, xerr, tb.hb.Listing())
		}
		hostSteps += res.Steps
		nexec := 0 // superblock: constituent blocks executed
		if sb == nil {
			e.met.guestInsts.Add(tb.nGuest)
			e.met.ruleCovered.Add(tb.nCovered)
			e.met.seqRuleInsts.Add(tb.nSeq)
			for _, op := range tb.uncovered {
				uncovered[op]++
			}
		} else {
			nexec = int(e.Mem.Read32(env.StateBase+env.OffSBExit)) + 1
			if nexec > len(sb.pcs) {
				nexec = len(sb.pcs)
			}
			e.met.superblockExecs.Inc()
			if nexec < len(sb.pcs) {
				e.met.sideExits.Inc()
			}
			e.met.guestInsts.Add(sb.cumGuest[nexec])
			e.met.ruleCovered.Add(sb.cumCovered[nexec])
			e.met.seqRuleInsts.Add(sb.cumSeq[nexec])
			for j := 0; j < nexec; j++ {
				for _, op := range sb.uncovered[j] {
					uncovered[op]++
				}
			}
			if traceBlock != nil {
				for j := 0; j < nexec; j++ {
					traceBlock(sb.pcs[j])
				}
			}
		}
		if curShadow != nil {
			var next uint32
			var diverged bool
			if sb != nil {
				next, diverged = e.shadowCheckSB(tb, curShadow, pc, res.NextPC, nexec)
			} else {
				next, diverged = e.shadowCheck(tb, curShadow, pc, res.NextPC)
			}
			curShadow = nil
			// Feed the adaptive controller, if configured: clean checks
			// decay the steady-state rate, a divergence snaps it back.
			if diverged {
				e.guardEvent()
			} else {
				e.guardClean()
			}
			if diverged {
				// The block's translation was purged; break the chain and
				// resume from the corrected state.
				prev = nil
				pc = next
				continue
			}
		}
		prev = tb
		pc = res.NextPC
	}
	// Keep the architectural PC in the CPUState coherent.
	e.Mem.Write32(env.StateBase+uint32(env.OffReg(int(guest.PC))), pc)
	// A clean halt is the only point the cache is known-good end to end
	// (every resident translation just carried the run): publish it.
	e.publishArtifacts()
	return snapshot(), nil
}

// block returns the translated block at pc, translating on a miss and
// seeding the speculative queue with the block's direct successors.
// While obs is enabled it times the cache lookup and the demand
// translation into the engine's histograms.
func (e *Engine) block(pc uint32) (*tblock, error) {
	on := obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	tb, ok := e.cache.get(pc)
	if on {
		e.met.lookupNs.ObserveSince(t0)
	}
	if ok {
		if e.smcOn && !tb.smcDone {
			// First dispatch of a worker-inserted translation: compute its
			// SMC metadata and register its pages here, on the Run
			// goroutine (superblocks get theirs in installSB).
			e.initSMCMeta(pc, tb)
		}
		return tb, nil
	}
	if on {
		t0 = time.Now()
	}
	tb = nil
	if e.svc != nil {
		// Shared-service path: the miss becomes a single-flight queue
		// request; exactly one tenant per fresh translation is the leader
		// and counts it, so summing dbt.translations across tenants
		// equals the translation work actually performed. Any service
		// error — backpressure, shutdown, a failed translation — falls
		// through to the local path below, which owns error reporting and
		// the guarded retry machinery.
		if proto, leader, err := e.svc.request(e.tnt, pc); err == nil {
			tb = e.adoptProto(pc, proto)
			if leader {
				e.met.translations.Inc()
			}
		}
	}
	if tb == nil {
		var err error
		if e.guard != nil || e.Cfg.Faults != nil {
			tb, err = e.translateGuarded(pc)
		} else {
			tb, err = e.translateIn(e.Mem, pc, &e.tx)
		}
		if err != nil {
			return nil, err
		}
		e.met.translations.Inc()
	}
	if on {
		e.met.translateNs.ObserveSince(t0)
	}
	if e.Cfg.Trace != nil {
		e.Cfg.Trace.Record(obs.EvTranslate, pc)
	}
	tb = e.cache.putIfAbsent(pc, tb)
	if e.smcOn && !tb.smcDone {
		e.initSMCMeta(pc, tb)
	}
	if on {
		e.met.cachedBlocks.Set(int64(e.cache.size()))
	}
	if e.spec != nil {
		e.spec.enqueue(tb)
	}
	return tb, nil
}

// Invalidate removes the translation at pc (after guest code changes)
// and tears down chaining safely: every link pointing at the stale
// block is unpatched, so chained execution can no longer reach it, and
// the next dispatch to pc retranslates. Any superblock whose trace
// covers pc — head or mid-trace — is torn down with it: its host code
// embeds the invalidated block's translation. It reports whether a
// translation existed. Invalidate must not run concurrently with Run.
func (e *Engine) Invalidate(pc uint32) bool {
	on := obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	tb := e.cache.remove(pc)
	covering := e.sbIndex[pc]
	if tb == nil && len(covering) == 0 {
		return false
	}
	// In-flight builder jobs were grown and translated against the
	// pre-invalidation cache and code image: discard the builder (its
	// code snapshot is stale) and stamp a new generation so any result
	// already in the queue is dropped instead of installed.
	e.cacheGen++
	if e.sbb != nil {
		// Discarded in-flight jobs hand their TraceBudget claims back.
		e.sbSpent -= e.sbb.inFlight
		e.sbb.shutdown()
		e.sbb = nil
	}
	if len(covering) > 0 {
		// teardownSB edits sbIndex[pc]; iterate a copy.
		for _, s := range append([]*tblock(nil), covering...) {
			e.teardownSB(s)
		}
	}
	if tb != nil {
		for _, l := range tb.incoming {
			l.to = nil
		}
		tb.incoming = nil
		for i := range tb.links {
			tb.links[i].to = nil
		}
	}
	if on {
		e.met.invalidateNs.ObserveSince(t0)
		e.met.invalidations.Inc()
		e.met.cachedBlocks.Set(int64(e.cache.size()))
	}
	if e.Cfg.Trace != nil {
		e.Cfg.Trace.Record(obs.EvInvalidate, pc)
	}
	return true
}

// CachedBlocks reports the number of translations currently cached.
func (e *Engine) CachedBlocks() int { return e.cache.size() }

// BlockListing translates (or fetches from cache) the block at pc and
// returns its annotated host listing alongside the guest disassembly —
// the debugging view of what the translator produced. The guest
// disassembly reuses the decode results stored in the cached block.
func (e *Engine) BlockListing(pc uint32) (string, error) {
	tb, err := e.block(pc)
	if err != nil {
		return "", err
	}
	s := fmt.Sprintf("guest block @%#x (%d insts, %d rule-covered):\n", pc, tb.nGuest, tb.nCovered)
	s += guest.Disassemble(pc, tb.insts)
	s += "host code:\n" + tb.hb.Listing()
	return s, nil
}

// fetchBlockIn decodes guest instructions from pc up to and including
// the terminator, reading code from m (the live memory on the demand
// path, a snapshot on the speculative path).
func fetchBlockIn(m *mem.Memory, pc uint32) ([]guest.Inst, error) {
	var out []guest.Inst
	for len(out) < maxBlockInsts {
		w := m.Read32(pc + uint32(len(out)*guest.InstBytes))
		in, err := guest.Decode(w)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		if isTerminator(in) {
			return out, nil
		}
	}
	return nil, fmt.Errorf("block at %#x exceeds %d instructions without a terminator", pc, maxBlockInsts)
}

func isTerminator(in guest.Inst) bool {
	if in.IsBranch() {
		return true
	}
	if in.Op == guest.POP && in.Ops[0].List&(1<<uint(guest.PC)) != 0 {
		return true
	}
	return false
}

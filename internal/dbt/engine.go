// Package dbt implements the dynamic binary translator: a block-at-a-time
// translation engine with a code cache, per-block guest-register
// allocation, a rule-based fast path fed by the (optionally
// parameterized) rule store, a TCG emulation fallback for everything the
// rules do not cover, and condition-flag delegation at rule-application
// time. Dynamic coverage and category-tagged host instruction counts —
// the paper's evaluation metrics — are collected while running.
package dbt

import (
	"fmt"

	"paramdbt/internal/env"
	"paramdbt/internal/guest"
	"paramdbt/internal/host"
	"paramdbt/internal/mem"
	"paramdbt/internal/rule"
)

// HaltPC is the sentinel next-PC meaning the guest executed HLT.
const HaltPC = 0xffffffff

// maxBlockInsts caps translation-block length (long straight-line runs
// occur in big generated functions).
const maxBlockInsts = 512

// Config selects the translation strategy; the experiment harness builds
// one Engine per paper configuration.
type Config struct {
	// Rules is the rule store (nil for the pure-QEMU baseline).
	Rules *rule.Store
	// DelegateFlags enables condition-flag delegation and the use of
	// derived flag-setting rules (the paper's "condition" factor).
	DelegateFlags bool
	// FlagWindow is the maximum setter-to-consumer distance (in guest
	// instructions) delegation accepts; the paper fixes 3.
	FlagWindow int
	// NoBlockRegAlloc disables per-block guest-register allocation:
	// every guest register access goes through its CPUState slot. Used
	// by the register-allocation ablation bench (Table II's data-transfer
	// overhead discussion).
	NoBlockRegAlloc bool
	// ManualABI adds the hand-written translations for the instructions
	// learning can never cover (push/pop/clz/mla/umla, and the pure-stub
	// control terminators) — the paper's §V-B2 path to ~100% coverage.
	ManualABI bool
}

// Stats aggregates the evaluation metrics.
type Stats struct {
	GuestExec   uint64 // dynamic guest instructions
	RuleCovered uint64 // of which rule-translated (dynamic coverage)
	Blocks      int    // translated blocks
	SeqRuleUses uint64 // dynamic guest insts covered by multi-insn rules

	// UncoveredOps breaks down emulated instructions by opcode — the
	// analysis behind the paper's "seven uncoverable instructions".
	UncoveredOps map[guest.Op]uint64
}

// Coverage returns the dynamic coverage fraction.
func (s Stats) Coverage() float64 {
	if s.GuestExec == 0 {
		return 0
	}
	return float64(s.RuleCovered) / float64(s.GuestExec)
}

// Engine is one DBT instance bound to a memory image.
type Engine struct {
	Cfg   Config
	Mem   *mem.Memory
	CPU   *host.CPU
	cache map[uint32]*tblock
}

type tblock struct {
	hb        *host.Block
	nGuest    uint64
	nCovered  uint64
	nSeq      uint64
	uncovered []guest.Op
}

// New creates an engine over the given memory. The CPUState block and
// host stack are established per the env layout.
func New(m *mem.Memory, cfg Config) *Engine {
	if cfg.FlagWindow == 0 {
		cfg.FlagWindow = 3
	}
	cpu := host.NewCPU(m)
	cpu.R[host.EBP] = env.StateBase
	cpu.R[host.ESP] = env.HostStackTop
	return &Engine{Cfg: cfg, Mem: m, CPU: cpu, cache: map[uint32]*tblock{}}
}

// SetGuestState writes a guest architectural state into the CPUState.
func (e *Engine) SetGuestState(st *guest.State) {
	for i := 0; i < guest.NumRegs; i++ {
		e.Mem.Write32(env.StateBase+uint32(env.OffReg(i)), st.R[i])
	}
	w := func(off int32, b bool) {
		v := uint32(0)
		if b {
			v = 1
		}
		e.Mem.Write32(env.StateBase+uint32(off), v)
	}
	w(env.OffN, st.Flags.N)
	w(env.OffZ, st.Flags.Z)
	w(env.OffC, st.Flags.C)
	w(env.OffV, st.Flags.V)
	for i := 0; i < guest.NumFRegs; i++ {
		e.Mem.Write32(env.StateBase+uint32(env.OffFReg(i)), st.F[i])
	}
}

// GuestState reads the guest architectural state out of the CPUState.
func (e *Engine) GuestState() *guest.State {
	st := &guest.State{Mem: e.Mem}
	for i := 0; i < guest.NumRegs; i++ {
		st.R[i] = e.Mem.Read32(env.StateBase + uint32(env.OffReg(i)))
	}
	st.Flags.N = e.Mem.Read32(env.StateBase+env.OffN) != 0
	st.Flags.Z = e.Mem.Read32(env.StateBase+env.OffZ) != 0
	st.Flags.C = e.Mem.Read32(env.StateBase+env.OffC) != 0
	st.Flags.V = e.Mem.Read32(env.StateBase+env.OffV) != 0
	for i := 0; i < guest.NumFRegs; i++ {
		st.F[i] = e.Mem.Read32(env.StateBase + uint32(env.OffFReg(i)))
	}
	return st
}

// Run executes guest code from entry until HLT, collecting statistics.
// maxHostSteps bounds total host instructions (runaway protection).
func (e *Engine) Run(entry uint32, maxHostSteps uint64) (Stats, error) {
	stats := Stats{UncoveredOps: map[guest.Op]uint64{}}
	pc := entry
	for pc != HaltPC {
		tb, err := e.block(pc, &stats)
		if err != nil {
			return stats, fmt.Errorf("dbt: translating block at %#x: %w", pc, err)
		}
		if e.CPU.Total() >= maxHostSteps {
			return stats, fmt.Errorf("dbt: host step budget exhausted at pc=%#x", pc)
		}
		res, err := e.CPU.Exec(tb.hb, maxHostSteps-e.CPU.Total())
		if err != nil {
			return stats, fmt.Errorf("dbt: executing block at %#x: %w\n%s", pc, err, tb.hb.Listing())
		}
		stats.GuestExec += tb.nGuest
		stats.RuleCovered += tb.nCovered
		stats.SeqRuleUses += tb.nSeq
		for _, op := range tb.uncovered {
			stats.UncoveredOps[op]++
		}
		pc = res.NextPC
	}
	// Keep the architectural PC in the CPUState coherent.
	e.Mem.Write32(env.StateBase+uint32(env.OffReg(int(guest.PC))), pc)
	return stats, nil
}

// block returns the translated block at pc, translating on a miss.
func (e *Engine) block(pc uint32, stats *Stats) (*tblock, error) {
	if tb, ok := e.cache[pc]; ok {
		return tb, nil
	}
	tb, err := e.translate(pc)
	if err != nil {
		return nil, err
	}
	e.cache[pc] = tb
	stats.Blocks++
	return tb, nil
}

// BlockListing translates (or fetches from cache) the block at pc and
// returns its annotated host listing alongside the guest disassembly —
// the debugging view of what the translator produced.
func (e *Engine) BlockListing(pc uint32) (string, error) {
	insts, err := e.fetchBlock(pc)
	if err != nil {
		return "", err
	}
	var st Stats
	tb, err := e.block(pc, &st)
	if err != nil {
		return "", err
	}
	s := fmt.Sprintf("guest block @%#x (%d insts, %d rule-covered):\n", pc, tb.nGuest, tb.nCovered)
	s += guest.Disassemble(pc, insts)
	s += "host code:\n" + tb.hb.Listing()
	return s, nil
}

// fetchBlock decodes guest instructions from pc up to and including the
// terminator.
func (e *Engine) fetchBlock(pc uint32) ([]guest.Inst, error) {
	var out []guest.Inst
	for len(out) < maxBlockInsts {
		w := e.Mem.Read32(pc + uint32(len(out)*guest.InstBytes))
		in, err := guest.Decode(w)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		if isTerminator(in) {
			return out, nil
		}
	}
	return nil, fmt.Errorf("block at %#x exceeds %d instructions without a terminator", pc, maxBlockInsts)
}

func isTerminator(in guest.Inst) bool {
	if in.IsBranch() {
		return true
	}
	if in.Op == guest.POP && in.Ops[0].List&(1<<uint(guest.PC)) != 0 {
		return true
	}
	return false
}

package dbt

import (
	"bytes"
	"errors"
	"testing"

	"paramdbt/internal/backend"
	"paramdbt/internal/core"
	"paramdbt/internal/env"
	"paramdbt/internal/guard/faultinject"
	"paramdbt/internal/guest"
	"paramdbt/internal/host"
	"paramdbt/internal/mem"
	"paramdbt/internal/minic"
	"paramdbt/internal/rule"
)

// startEngine loads the compiled program into fresh memory, builds an
// engine and installs the initial guest state, returning the engine so
// tests can reach its cache/quarantine internals (unlike runProgram).
func startEngine(t *testing.T, c *minic.Compiled, cfg Config) *Engine {
	t.Helper()
	m := mem.New()
	if _, err := c.LoadGuest(m); err != nil {
		t.Fatal(err)
	}
	e := New(m, cfg)
	init := &guest.State{Mem: m}
	init.R[guest.SP] = env.StackTop
	e.SetGuestState(init)
	return e
}

// corruptUsedAddRule runs the program once faultlessly, then corrupts a
// rule the run actually used whose host code contains an ADDL — the
// loop accumulator in testProgram adds nonzero values every iteration,
// so flipping it to SUBL guarantees an observable divergence.
func corruptUsedAddRule(t *testing.T, c *minic.Compiled, par *rule.Store) *rule.Template {
	t.Helper()
	warm := startEngine(t, c, Config{Rules: par, DelegateFlags: true})
	if _, err := warm.Run(env.CodeBase, 100_000_000); err != nil {
		t.Fatal(err)
	}
	for _, tm := range warm.CachedRuleTemplates() {
		for _, h := range tm.Host {
			if h.Op == host.ADDL {
				if !faultinject.CorruptTemplate(tm) {
					t.Fatalf("rule with ADDL reported uncorruptible: %v", tm)
				}
				return tm
			}
		}
	}
	t.Fatal("no executed rule with an ADDL host op")
	return nil
}

// TestShadowCleanRun verifies the zero-divergence baseline: with every
// block execution shadow-verified and no faults, the verifier agrees
// with the translated code everywhere and quarantines nothing.
func TestShadowCleanRun(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	_, par := learnRules(t, testProgram(), core.Config{Opcode: true, AddrMode: true})
	got, stats := runProgram(t, c, Config{Rules: par, DelegateFlags: true, ShadowRate: 1})
	sameResult(t, want, got, "shadow clean")
	if stats.ShadowChecks == 0 {
		t.Fatal("ShadowRate=1 recorded no shadow checks")
	}
	if stats.Divergences != 0 || stats.QuarantinedRules != 0 {
		t.Fatalf("clean run diverged: %d divergences, %d quarantined",
			stats.Divergences, stats.QuarantinedRules)
	}
	if par.QuarantineLen() != 0 {
		t.Fatalf("clean run quarantined %d rules", par.QuarantineLen())
	}
}

// TestShadowDetectsCorruptRule is the tentpole scenario: a learned rule
// with silently corrupted host semantics must be caught by shadow
// verification, blamed, quarantined, and the run must still finish with
// the interpreter-correct final state.
func TestShadowDetectsCorruptRule(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	_, par := learnRules(t, testProgram(), core.Config{Opcode: true, AddrMode: true})
	bad := corruptUsedAddRule(t, c, par)

	e := startEngine(t, c, Config{Rules: par, DelegateFlags: true, ShadowRate: 1})
	stats, err := e.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, e.GuestState(), "corrupt rule recovered")
	if stats.Divergences == 0 {
		t.Fatal("corrupted rule produced no divergences")
	}
	if stats.QuarantinedRules == 0 || par.QuarantineLen() == 0 {
		t.Fatal("divergence quarantined no rules")
	}
	if !par.IsQuarantined(bad) {
		t.Fatalf("corrupted rule %v not in the quarantine set", bad)
	}
	divs := e.Divergences()
	if len(divs) == 0 {
		t.Fatal("engine retained no divergence records")
	}
	if len(divs[0].Mismatches) == 0 {
		t.Fatalf("divergence record has no mismatches: %v", divs[0])
	}

	// The quarantine survives persistence: a fresh store built from the
	// same table re-demotes the rule via the saved entries.
	entries := par.Quarantined()
	found := false
	for _, q := range entries {
		if q.Fingerprint == bad.Fingerprint() {
			found = true
			if q.Reason == "" {
				t.Fatal("quarantine entry has no reason")
			}
		}
	}
	if !found {
		t.Fatalf("corrupted fingerprint missing from quarantine entries: %+v", entries)
	}
}

// TestQuarantinePersistsAcrossBackends is the cross-backend restart
// scenario: a rule corrupted and quarantined while running under
// backend A must stay quarantined when the persisted rule table and
// quarantine file are reloaded into an engine built for backend B —
// quarantine entries are keyed by backend-neutral rule fingerprints,
// while only retrieval keys are backend-namespaced.
func TestQuarantinePersistsAcrossBackends(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	_, par := learnRules(t, testProgram(), core.Config{Opcode: true, AddrMode: true})
	bad := corruptUsedAddRule(t, c, par)

	// Backend A (x86): shadow verification catches the corruption and
	// quarantines the rule.
	ea := startEngine(t, c, Config{
		Rules: par, DelegateFlags: true, ShadowRate: 1,
		Backend: backend.MustLookup("x86"),
	})
	if _, err := ea.Run(env.CodeBase, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if !par.IsQuarantined(bad) {
		t.Fatal("backend A run did not quarantine the corrupted rule")
	}

	// Persist both the table (still holding the corrupted host code) and
	// the quarantine set, exactly what -quarantine-file does.
	var tbuf, qbuf bytes.Buffer
	if err := par.Save(&tbuf); err != nil {
		t.Fatal(err)
	}
	if err := rule.SaveQuarantine(&qbuf, par.Quarantined()); err != nil {
		t.Fatal(err)
	}

	// Restart under backend B (risc) from the persisted state.
	loaded, err := rule.Load(bytes.NewReader(tbuf.Bytes()), false)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := rule.LoadQuarantine(bytes.NewReader(qbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n := loaded.ApplyQuarantine(entries); n == 0 {
		t.Fatal("persisted quarantine matched no reloaded rules")
	}
	eb := startEngine(t, c, Config{
		Rules: loaded, DelegateFlags: true, ShadowRate: 1,
		Backend: backend.MustLookup("risc"),
	})
	stats, err := eb.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, eb.GuestState(), "backend B after quarantine reload")
	if stats.Divergences != 0 {
		t.Fatalf("backend B run diverged %d times: the quarantined corrupted rule must stay excluded", stats.Divergences)
	}
	reloadedBad := false
	for _, tm := range loaded.All() {
		if tm.Fingerprint() == bad.Fingerprint() {
			reloadedBad = loaded.IsQuarantined(tm)
		}
	}
	if !reloadedBad {
		t.Fatal("corrupted rule not quarantined in the reloaded backend-B store")
	}
}

// TestTranslatorPanicRecovery checks that injected demand-translation
// panics are absorbed by the guarded retry loop and the run completes
// correctly.
func TestTranslatorPanicRecovery(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	_, par := learnRules(t, testProgram(), core.Config{Opcode: true, AddrMode: true})
	inj := faultinject.New(faultinject.Plan{TranslatePanics: 3})
	got, stats := runProgram(t, c, Config{Rules: par, DelegateFlags: true, Faults: inj})
	sameResult(t, want, got, "panic recovery")
	if stats.PanicsRecovered != 3 {
		t.Fatalf("PanicsRecovered = %d, want 3", stats.PanicsRecovered)
	}
	panics, _, _, _ := inj.Counts()
	if panics != 3 {
		t.Fatalf("injector reports %d panics, want 3", panics)
	}
}

// TestRunPanicReturnsTypedError drives a panic the guarded translation
// path cannot absorb (a panicking TraceBlock hook, standing in for a
// simulator bug) and checks the satellite contract: Run returns a
// PanicError instead of crashing, the architectural PC is left at the
// faulting block, and the run is resumable from that state.
func TestRunPanicReturnsTypedError(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	m := mem.New()
	if _, err := c.LoadGuest(m); err != nil {
		t.Fatal(err)
	}
	blocks := 0
	cfg := Config{TraceBlock: func(pc uint32) {
		blocks++
		if blocks == 3 {
			panic("injected simulator bug")
		}
	}}
	e := New(m, cfg)
	init := &guest.State{Mem: m}
	init.R[guest.SP] = env.StackTop
	e.SetGuestState(init)

	_, err := e.Run(env.CodeBase, 100_000_000)
	if err == nil {
		t.Fatal("Run swallowed the panic")
	}
	if !errors.Is(err, ErrTranslatorPanic) {
		t.Fatalf("error %v is not ErrTranslatorPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *PanicError", err)
	}
	resume := e.GuestState().R[guest.PC]
	if resume != pe.PC {
		t.Fatalf("architectural pc %#x does not match faulting pc %#x", resume, pe.PC)
	}

	// The guest state is consistent at the faulting block boundary:
	// resuming from it completes the program correctly.
	if _, err := e.Run(resume, 100_000_000); err != nil {
		t.Fatalf("resume after panic: %v", err)
	}
	sameResult(t, want, e.GuestState(), "resumed after panic")
}

// TestInterpFallback starves translation entirely (every demand
// translation fails with an injected decode error) and checks the run
// still completes, executed block by block on the reference
// interpreter.
func TestInterpFallback(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	_, par := learnRules(t, testProgram(), core.Config{Opcode: true, AddrMode: true})
	inj := faultinject.New(faultinject.Plan{DecodeErrors: 1 << 30})
	got, stats := runProgram(t, c, Config{Rules: par, DelegateFlags: true, Faults: inj})
	sameResult(t, want, got, "interp fallback")
	if stats.InterpFallbacks == 0 {
		t.Fatal("no interpreter fallbacks recorded")
	}
	if stats.GuestExec == 0 {
		t.Fatal("fallback run retired no guest instructions")
	}
}

// TestDropShardSurvives drops code-cache shards mid-run and checks the
// engine retranslates through the loss with correct results.
func TestDropShardSurvives(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	_, par := learnRules(t, testProgram(), core.Config{Opcode: true, AddrMode: true})
	inj := faultinject.New(faultinject.Plan{Seed: 5, DropShards: 64, DropEvery: 2})
	got, stats := runProgram(t, c, Config{Rules: par, DelegateFlags: true, Faults: inj})
	sameResult(t, want, got, "shard drops")
	if _, _, drops, _ := inj.Counts(); drops == 0 {
		t.Fatal("no shards were dropped")
	}
	if stats.GuestExec == 0 {
		t.Fatal("run retired no guest instructions")
	}
}

// TestFaultPlanCanned is the acceptance scenario behind `make
// test-faults`: the canned plan in testdata corrupts a learned rule and
// injects translator panics, decode errors, shard drops and a worker
// failure into one run. The run must complete with the
// interpreter-correct final state, the corrupted rule in quarantine,
// at least one recorded divergence and zero unrecovered panics (an
// unrecovered panic surfaces as a Run error).
func TestFaultPlanCanned(t *testing.T) {
	plan, err := faultinject.LoadPlan("testdata/faultplan.json")
	if err != nil {
		t.Fatal(err)
	}
	if plan.CorruptRules < 1 {
		t.Fatalf("canned plan must corrupt at least one rule: %+v", plan)
	}
	c := compileT(t, testProgram())
	want := interpret(t, c)
	_, par := learnRules(t, testProgram(), core.Config{Opcode: true, AddrMode: true})
	bad := corruptUsedAddRule(t, c, par)

	inj := faultinject.New(plan)
	e := startEngine(t, c, Config{
		Rules:            par,
		DelegateFlags:    true,
		ShadowRate:       1,
		TranslateWorkers: 2,
		Faults:           inj,
	})
	stats, err := e.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatalf("run under fault plan failed: %v", err)
	}
	sameResult(t, want, e.GuestState(), "fault plan")
	if stats.Divergences == 0 {
		t.Fatal("fault plan produced no divergences")
	}
	if !par.IsQuarantined(bad) {
		t.Fatal("corrupted rule not quarantined")
	}
	if stats.PanicsRecovered == 0 && plan.TranslatePanics > 0 {
		t.Fatal("no injected panics were recovered")
	}
	panics, decodes, drops, workers := inj.Counts()
	t.Logf("fault plan injected: %d panics, %d decode errors, %d shard drops, %d worker failures; stats: %+v",
		panics, decodes, drops, workers, stats)
}

// TestInvalidateUnpatchesAllPredecessors is the chaining-teardown
// satellite: a block reachable over patched links from several
// predecessors must, on invalidation, have every one of those links
// unpatched — a single stale link would chain into freed code. The
// rerun confirms chaining rebuilds (ChainedExits > 0) and results stay
// correct.
func TestInvalidateUnpatchesAllPredecessors(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	m := mem.New()
	if _, err := c.LoadGuest(m); err != nil {
		t.Fatal(err)
	}
	e := New(m, Config{})
	init := &guest.State{Mem: m}
	init.R[guest.SP] = env.StackTop
	e.SetGuestState(init)
	if _, err := e.Run(env.CodeBase, 100_000_000); err != nil {
		t.Fatal(err)
	}

	// Pick the block with the most patched incoming links.
	var victim uint32
	most := 0
	e.cache.each(func(pc uint32, tb *tblock) {
		n := 0
		for _, l := range tb.incoming {
			if l.to == tb {
				n++
			}
		}
		if n > most {
			most = n
			victim = pc
		}
	})
	if most == 0 {
		t.Fatal("no block has patched incoming links")
	}
	vt, _ := e.cache.get(victim)

	// Snapshot every link slot in the whole cache that points at the
	// victim — including any the victim's own incoming list might have
	// missed (that would itself be a bug this test should catch).
	var pointing []*blockLink
	e.cache.each(func(pc uint32, tb *tblock) {
		for i := range tb.links {
			if tb.links[i].to == vt {
				pointing = append(pointing, &tb.links[i])
			}
		}
	})
	if len(pointing) != most {
		t.Fatalf("victim incoming list has %d links, cache scan found %d", most, len(pointing))
	}

	if !e.Invalidate(victim) {
		t.Fatalf("Invalidate(%#x) found nothing", victim)
	}
	for i, l := range pointing {
		if l.to != nil {
			t.Fatalf("predecessor link %d/%d to %#x survived invalidation", i+1, len(pointing), victim)
		}
	}

	init2 := &guest.State{Mem: m}
	init2.R[guest.SP] = env.StackTop
	e.SetGuestState(init2)
	stats, err := e.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, e.GuestState(), "after multi-predecessor invalidate")
	if stats.ChainedExits == 0 {
		t.Fatal("rerun never chained — links were not rebuilt")
	}
	if _, ok := e.cache.get(victim); !ok {
		t.Fatalf("block %#x not retranslated on rerun", victim)
	}
}

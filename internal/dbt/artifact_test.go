package dbt

import (
	"os"
	"path/filepath"
	"testing"

	"paramdbt/internal/artifact"
	"paramdbt/internal/core"
	"paramdbt/internal/env"
	"paramdbt/internal/guest"
	"paramdbt/internal/mem"
	"paramdbt/internal/minic"
	"paramdbt/internal/rule"
)

// newArtEngine loads c into a fresh memory and returns a ready engine —
// runProgram without the Run, so tests can inspect warm-start state
// before execution.
func newArtEngine(t *testing.T, c *minic.Compiled, cfg Config) *Engine {
	t.Helper()
	m := mem.New()
	if _, err := c.LoadGuest(m); err != nil {
		t.Fatal(err)
	}
	e := New(m, cfg)
	init := &guest.State{Mem: m}
	init.R[guest.SP] = env.StackTop
	e.SetGuestState(init)
	return e
}

// warmRoundTripCfg is the shared configuration for the warm-start
// round-trip tests: full rules, flag delegation, shadow verification on
// every block, synchronous trace formation.
func warmRoundTripCfg(rules *rule.Store, dir string) Config {
	return Config{
		Rules:         rules,
		DelegateFlags: true,
		ShadowRate:    1,
		HotThreshold:  2,
		SyncTraces:    true,
		ArtifactDir:   dir,
	}
}

// TestWarmStartRoundTrip is the core persistence invariant: an engine
// warm-started from a store a first engine populated restores every
// block and trace before running, performs zero demand translations,
// and replays the workload to an identical result with every block
// shadow-verified.
func TestWarmStartRoundTrip(t *testing.T) {
	c := compileT(t, hotProgram())
	_, rules := learnRules(t, hotProgram(), core.Config{Opcode: true, AddrMode: true})
	dir := t.TempDir()

	e1 := newArtEngine(t, c, warmRoundTripCfg(rules, dir))
	if w := e1.WarmStats(); !w.Enabled || w.Hits != 0 || w.Misses != 1 {
		t.Fatalf("cold engine warm stats = %+v, want enabled with one miss", w)
	}
	st1, err := e1.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Translations == 0 {
		t.Fatalf("cold run translated nothing: %+v", st1)
	}
	if st1.Divergences != 0 {
		t.Fatalf("cold run diverged: %+v", st1)
	}

	// A fresh rule store built the same way must fingerprint identically,
	// or no cross-engine warm start could ever hit.
	_, rules2 := learnRules(t, hotProgram(), core.Config{Opcode: true, AddrMode: true})
	e2 := newArtEngine(t, c, warmRoundTripCfg(rules2, dir))
	w := e2.WarmStats()
	if w.Hits != 1 || w.Err != "" {
		t.Fatalf("warm engine stats = %+v, want one hit and no error", w)
	}
	if w.Blocks == 0 {
		t.Fatal("warm engine restored no blocks")
	}
	if w.Traces == 0 {
		t.Fatal("warm engine restored no traces")
	}
	if e2.CachedBlocks() == 0 {
		t.Fatal("warm engine cache empty after restore")
	}
	st2, err := e2.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Translations != 0 {
		t.Fatalf("warm run demand-translated %d blocks, want 0", st2.Translations)
	}
	if st2.Divergences != 0 {
		t.Fatalf("warm run diverged: %+v", st2)
	}
	sameResult(t, e1.GuestState(), e2.GuestState(), "warm vs cold")
	if st2.GuestExec != st1.GuestExec {
		t.Fatalf("warm GuestExec = %d, cold = %d", st2.GuestExec, st1.GuestExec)
	}
}

// TestWarmStartKeyMismatchIsCold checks each key component invalidates:
// an engine differing in guest code, backend or rule table must miss
// the first engine's artifact and behave exactly cold.
func TestWarmStartKeyMismatchIsCold(t *testing.T) {
	c := compileT(t, hotProgram())
	_, rules := learnRules(t, hotProgram(), core.Config{Opcode: true, AddrMode: true})
	dir := t.TempDir()

	e1 := newArtEngine(t, c, warmRoundTripCfg(rules, dir))
	if _, err := e1.Run(env.CodeBase, 100_000_000); err != nil {
		t.Fatal(err)
	}

	// Different guest code → different CodeHash → miss.
	c2 := compileT(t, testProgram())
	_, rules2 := learnRules(t, hotProgram(), core.Config{Opcode: true, AddrMode: true})
	e2 := newArtEngine(t, c2, warmRoundTripCfg(rules2, dir))
	if w := e2.WarmStats(); w.Hits != 0 || w.Misses != 1 || w.Blocks != 0 {
		t.Fatalf("code-hash mismatch warm stats = %+v, want a miss", w)
	}

	// Different rule table → different RuleFp → miss.
	_, fewer := learnRules(t, hotProgram(), core.Config{Opcode: true})
	e3 := newArtEngine(t, c, warmRoundTripCfg(fewer, dir))
	if w := e3.WarmStats(); w.Hits != 0 || w.Blocks != 0 {
		t.Fatalf("rule-fp mismatch warm stats = %+v, want a miss", w)
	}
}

// TestWarmStartCorruptArtifactRejected flips a bit in the published
// object and checks the warm engine rejects it and degrades to cold —
// same results, just no restored cache.
func TestWarmStartCorruptArtifactRejected(t *testing.T) {
	c := compileT(t, hotProgram())
	_, rules := learnRules(t, hotProgram(), core.Config{Opcode: true, AddrMode: true})
	dir := t.TempDir()

	e1 := newArtEngine(t, c, warmRoundTripCfg(rules, dir))
	if _, err := e1.Run(env.CodeBase, 100_000_000); err != nil {
		t.Fatal(err)
	}

	objs, err := filepath.Glob(filepath.Join(dir, "objects", "*.obj"))
	if err != nil || len(objs) == 0 {
		t.Fatalf("no published objects: %v %v", objs, err)
	}
	for _, obj := range objs {
		raw, err := os.ReadFile(obj)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x01
		if err := os.WriteFile(obj, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	_, rules2 := learnRules(t, hotProgram(), core.Config{Opcode: true, AddrMode: true})
	e2 := newArtEngine(t, c, warmRoundTripCfg(rules2, dir))
	w := e2.WarmStats()
	if w.Rejects == 0 {
		t.Fatalf("corrupt artifact not rejected: %+v", w)
	}
	if w.Blocks != 0 || w.Traces != 0 {
		t.Fatalf("corrupt artifact partially restored: %+v", w)
	}
	st2, err := e2.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Translations == 0 || st2.Divergences != 0 {
		t.Fatalf("degraded-to-cold run wrong: %+v", st2)
	}
}

// TestWarmStartQuarantineShardPropagates checks demotions travel through
// the store: a rule quarantined in engine 1's table is demoted in
// engine 2's before engine 2 executes anything.
func TestWarmStartQuarantineShardPropagates(t *testing.T) {
	c := compileT(t, hotProgram())
	_, rules := learnRules(t, hotProgram(), core.Config{Opcode: true, AddrMode: true})
	dir := t.TempDir()

	// Demote one rule by hand, then run to a clean halt so the engine
	// merges its quarantine state into the shard.
	all := rules.All()
	if len(all) == 0 {
		t.Fatal("no rules learned")
	}
	victim := all[0].Fingerprint()
	if n := rules.ApplyQuarantine([]rule.QuarantineEntry{{Fingerprint: victim, Reason: "test demotion"}}); n != 1 {
		t.Fatalf("ApplyQuarantine = %d, want 1", n)
	}
	e1 := newArtEngine(t, c, warmRoundTripCfg(rules, dir))
	if _, err := e1.Run(env.CodeBase, 100_000_000); err != nil {
		t.Fatal(err)
	}

	// Note the quarantine deliberately does NOT change the store
	// fingerprint (demotions propagate via the shard instead), so the
	// fresh engine still hits engine 1's artifacts.
	_, rules2 := learnRules(t, hotProgram(), core.Config{Opcode: true, AddrMode: true})
	if rules2.QuarantineLen() != 0 {
		t.Fatal("fresh store already quarantined")
	}
	e2 := newArtEngine(t, c, warmRoundTripCfg(rules2, dir))
	w := e2.WarmStats()
	if w.Quarantined != 1 {
		t.Fatalf("warm engine applied %d demotions, want 1 (%+v)", w.Quarantined, w)
	}
	if rules2.QuarantineLen() != 1 {
		t.Fatalf("rule store quarantine len = %d, want 1", rules2.QuarantineLen())
	}
	if w.Hits != 1 {
		t.Fatalf("quarantine must not change the artifact key: %+v", w)
	}
}

// TestWarmStartRestoreRespectsTraceConfig: a manifest recorded with
// traces restores plain blocks only into an engine that has trace
// formation off, and respects TraceBudget when it is on.
func TestWarmStartRestoreRespectsTraceConfig(t *testing.T) {
	c := compileT(t, hotProgram())
	_, rules := learnRules(t, hotProgram(), core.Config{Opcode: true, AddrMode: true})
	dir := t.TempDir()

	e1 := newArtEngine(t, c, warmRoundTripCfg(rules, dir))
	if _, err := e1.Run(env.CodeBase, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if e1.WarmStats().Enabled && e1.LiveStats().TracesFormed == 0 {
		t.Fatal("cold run formed no traces; test needs a trace in the manifest")
	}

	// No HotThreshold: blocks restore, traces do not.
	_, rules2 := learnRules(t, hotProgram(), core.Config{Opcode: true, AddrMode: true})
	cfg := warmRoundTripCfg(rules2, dir)
	cfg.HotThreshold = 0
	e2 := newArtEngine(t, c, cfg)
	w := e2.WarmStats()
	if w.Blocks == 0 || w.Traces != 0 {
		t.Fatalf("trace-off restore = %+v, want blocks only", w)
	}
	st, err := e2.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Translations != 0 {
		t.Fatalf("restored blocks not reused: %d translations", st.Translations)
	}
}

// TestWarmStartPublishIsAtomicIdempotent reruns the same engine twice
// and checks the second clean halt republishes nothing new (identical
// manifest dedups) and the store directory holds no temp litter.
func TestWarmStartPublishIsIdempotent(t *testing.T) {
	c := compileT(t, hotProgram())
	_, rules := learnRules(t, hotProgram(), core.Config{Opcode: true, AddrMode: true})
	dir := t.TempDir()

	// Budget of one trace: without it the second run keeps heating heads
	// the first run left sub-threshold, forms more traces and so
	// (correctly) republishes a changed manifest — this test wants the
	// manifest bit-identical across runs.
	cfg := warmRoundTripCfg(rules, dir)
	cfg.TraceBudget = 1
	e := newArtEngine(t, c, cfg)
	if _, err := e.Run(env.CodeBase, 100_000_000); err != nil {
		t.Fatal(err)
	}
	refs1, _ := filepath.Glob(filepath.Join(dir, "refs", "*"))
	hits, misses, rejects, pubs1 := storeCounts(t, dir, e)
	_ = hits
	_ = misses
	_ = rejects

	// Second run: same image, same cache, same manifest.
	e.SetGuestState(&guest.State{Mem: e.Mem, R: func() (r [16]uint32) { r[guest.SP] = env.StackTop; return }()})
	if _, err := e.Run(env.CodeBase, 100_000_000); err != nil {
		t.Fatal(err)
	}
	refs2, _ := filepath.Glob(filepath.Join(dir, "refs", "*"))
	if len(refs2) != len(refs1) {
		t.Fatalf("refs grew %d -> %d on identical republish", len(refs1), len(refs2))
	}
	_, _, _, pubs2 := storeCounts(t, dir, e)
	if pubs2 != pubs1 {
		t.Fatalf("publishes grew %d -> %d on identical republish", pubs1, pubs2)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*", "*.tmp*"))
	if len(tmps) != 0 {
		t.Fatalf("temp litter left behind: %v", tmps)
	}
}

// storeCounts reads the engine's artifact counters off its registry.
func storeCounts(t *testing.T, dir string, e *Engine) (hits, misses, rejects, publishes uint64) {
	t.Helper()
	reg := e.Metrics()
	return reg.Counter(artifact.MetHits).Value(),
		reg.Counter(artifact.MetMisses).Value(),
		reg.Counter(artifact.MetRejects).Value(),
		reg.Counter(artifact.MetPublishes).Value()
}

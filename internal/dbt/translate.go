package dbt

import (
	"fmt"
	"sort"

	"paramdbt/internal/analysis"
	"paramdbt/internal/core"
	"paramdbt/internal/env"
	"paramdbt/internal/guest"
	"paramdbt/internal/host"
	"paramdbt/internal/mem"
	"paramdbt/internal/rule"
	"paramdbt/internal/tcg"
)

// The engine's blockRegs (host registers available for block-lifetime
// guest register mapping) and tempPool (TCG temporaries, rule operand
// staging, flag materialization) are the backend's register policy,
// cached on the Engine at construction.

type pathKind uint8

const (
	pathTCG pathKind = iota
	pathRule
	pathRuleTail // covered by the rule headed at an earlier instruction
	pathTerm
)

// iplan is the per-instruction translation plan.
type iplan struct {
	kind pathKind
	tmpl *rule.Template
	bind rule.Binding
	// delegated: this flag-setting instruction leaves NZCV in the host
	// EFLAGS for the terminator branch instead of materializing.
	delegated bool
	// needsDeleg: the rule has no materialization recipe (S-shifts), so
	// it survives only if delegation lands; otherwise it demotes to TCG.
	needsDeleg bool
}

// txctx is per-goroutine translation scratch: the candidate-free
// lookup-window memo plus an arena of Binding slots, one per accepted
// rule window. Lookups write into the next free slot (rule.LookupInto),
// and the slot is kept only when the window is accepted — so a warm
// arena makes the whole rule fast path allocation-free per block. The
// engine owns one for the Run goroutine (Engine.tx); speculative
// workers and blame-isolation trials carry their own.
type txctx struct {
	miss  rule.MissSet
	binds []rule.Binding
	n     int
}

// reset starts a new translation unit (one block, or one superblock).
func (c *txctx) reset() {
	c.miss.Reset()
	c.n = 0
}

// slot returns the current scratch Binding (growing the arena on first
// use); keep advances past it once the lookup's result is accepted.
func (c *txctx) slot() *rule.Binding {
	if c.n == len(c.binds) {
		c.binds = append(c.binds, rule.Binding{})
	}
	return &c.binds[c.n]
}

func (c *txctx) keep() { c.n++ }

// blockPlan is the per-instruction plan for one basic block of a
// translation unit, produced by planBlock and refined by finishPlan.
type blockPlan struct {
	plans    []iplan
	termRule *iplan
}

// translateIn builds the host block for the guest block at pc, fetching
// code from m (live memory on the demand path, a snapshot for the
// speculative workers — see specPool). tx holds the per-goroutine
// translation scratch (miss memo + binding arena). Translation is a
// pure function of the code bytes and the engine configuration, so
// concurrent callers produce identical blocks.
func (e *Engine) translateIn(m *mem.Memory, pc uint32, tx *txctx) (*tblock, error) {
	return e.translateWith(m, pc, tx, nil, nil)
}

// translateWith is translateIn with the guard layer's extension
// points: skip excludes individual rule templates from retrieval (the
// blame-isolation trials translate with one suspect excluded —
// quarantined rules are excluded on every path by the store itself),
// and cur, when non-nil, tracks the template currently being
// instantiated so a panic inside rule emission can be attributed to
// the rule that caused it.
func (e *Engine) translateWith(m *mem.Memory, pc uint32, tx *txctx, skip func(*rule.Template) bool, cur **rule.Template) (*tblock, error) {
	insts, err := fetchBlockIn(m, pc)
	if err != nil {
		return nil, err
	}
	n := len(insts)
	term := insts[n-1]

	// Passes 1-4: rule windows, register allocation, staging demotion,
	// flag delegation.
	tx.reset()
	bp := e.planBlock(insts, tx, skip)
	mapping := e.allocRegs(insts)
	e.finishPlan(&bp, insts, mapping)

	// Pass 5: emission. Alongside the host code, record the block's rule
	// provenance (the distinct templates whose code it contains) and
	// whether its NZCV state stays exact in the CPUState — both feed the
	// guard layer's shadow verification and blame isolation.
	a := host.NewAsm()
	e.emitPrologue(a, mapping)
	em, err := e.emitBody(a, pc, insts, bp.plans, mapping, cur)
	if err != nil {
		return nil, err
	}
	covered := em.covered
	termCovered, err := e.emitTerminator(a, term, pc+uint32((n-1)*guest.InstBytes), bp.plans, bp.termRule, mapping)
	if err != nil {
		return nil, fmt.Errorf("terminator %q: %w", term, err)
	}
	if !termCovered && e.Cfg.ManualABI && manualTerminatorCovered(term) {
		termCovered = true
	}
	if termCovered {
		if bp.termRule == nil {
			// Covered through delegation (a branch-tail rule's window
			// already counted its own branch).
			covered++
		}
	} else {
		em.uncovered = append(em.uncovered, term.Op)
		if bp.termRule != nil {
			// The branch of the matched branch-tail rule could not be
			// emitted; its body still counted itself.
			covered--
		}
	}

	// The backend finalizes the complete assembled stream — rule bodies
	// and TCG-lowered code alike — applying any legalization its encoder
	// requires before the block becomes executable.
	hb, err := e.be.Finalize(a)
	if err != nil {
		return nil, err
	}
	hb = e.finishBlock(hb, []analysis.GuestSeg{{PC: pc, Insts: insts}}, em.flagsExact)

	return &tblock{
		hb:         hb,
		insts:      insts,
		nGuest:     uint64(n),
		nCovered:   covered,
		nSeq:       em.seq,
		uncovered:  em.uncovered,
		links:      directLinks(pc, insts),
		rules:      em.used,
		flagsExact: em.flagsExact,
		elevated:   e.elevates(em.used),
	}, nil
}

// planBlock is pass 1: choose rule windows greedily (longest match
// first) over one basic block. The window may extend through the
// terminator when a branch-tail rule (compare-and-branch) matches it.
func (e *Engine) planBlock(insts []guest.Inst, tx *txctx, skip func(*rule.Template) bool) blockPlan {
	n := len(insts)
	plans := make([]iplan, n)
	plans[n-1] = iplan{kind: pathTerm}
	bp := blockPlan{plans: plans}
	if e.Cfg.Rules == nil {
		return bp
	}
	body := insts[:n-1]
	for i := 0; i < len(body); {
		in := body[i]
		if in.Cond != guest.AL {
			plans[i] = iplan{kind: pathTCG}
			i++
			continue
		}
		b := tx.slot()
		tmpl, l := e.Cfg.Rules.LookupInto(insts[i:], &tx.miss, skip, b)
		usable, needsDeleg := e.ruleUsable(tmpl)
		if tmpl != nil && usable {
			tx.keep()
			plans[i] = iplan{kind: pathRule, tmpl: tmpl, bind: *b, needsDeleg: needsDeleg}
			for j := 1; j < l; j++ {
				plans[i+j] = iplan{kind: pathRuleTail}
			}
			if tmpl.BranchTail {
				bp.termRule = &plans[i]
			}
			i += l
			continue
		}
		plans[i] = iplan{kind: pathTCG}
		i++
	}
	return bp
}

// finishPlan is passes 3-4 over one basic block, given the (block- or
// trace-wide) register mapping: demote rules whose operand staging
// exceeds the temp pool, then plan condition-flag delegation for the
// block's terminator branch; rules that required delegation but did
// not get it fall back to TCG.
func (e *Engine) finishPlan(bp *blockPlan, insts []guest.Inst, mapping map[guest.Reg]host.Reg) {
	body := insts[:len(insts)-1]
	plans := bp.plans
	for i := range body {
		p := &plans[i]
		if p.kind != pathRule {
			continue
		}
		need := e.stagingNeed(p.tmpl, p.bind, mapping)
		if body[i].SetsFlags() {
			need++ // flag materialization needs one free register
		}
		if need > len(e.tempPool) {
			demote(plans, i)
		}
	}
	e.planDelegation(insts, plans)
	for i := range body {
		if plans[i].kind == pathRule && plans[i].needsDeleg && !plans[i].delegated {
			demote(plans, i)
		}
	}
}

// emitted aggregates what emitBody produced for one basic block's body
// (terminator accounting is the caller's, since seams and real
// terminators differ).
type emitted struct {
	covered, seq uint64
	uncovered    []guest.Op
	used         []*rule.Template
	flagsExact   bool
}

// emitBody emits the body (all but the terminator) of one basic block
// into the shared assembler.
func (e *Engine) emitBody(a *host.Asm, pc uint32, insts []guest.Inst, plans []iplan, mapping map[guest.Reg]host.Reg, cur **rule.Template) (emitted, error) {
	em := emitted{flagsExact: true}
	body := insts[:len(insts)-1]
	for i := range body {
		p := plans[i]
		if p.delegated {
			em.flagsExact = false
		}
		switch p.kind {
		case pathRule:
			if p.tmpl.BranchTail {
				em.flagsExact = false
			}
			seen := false
			for _, t := range em.used {
				if t == p.tmpl {
					seen = true
					break
				}
			}
			if !seen {
				em.used = append(em.used, p.tmpl)
			}
			if cur != nil {
				*cur = p.tmpl
			}
			if err := e.emitRule(a, body[i], p, mapping); err != nil {
				return em, fmt.Errorf("inst %d %q: %w", i, body[i], err)
			}
			if cur != nil {
				*cur = nil
			}
			l := p.tmpl.GuestLen()
			em.covered += uint64(l)
			if l > 1 {
				em.seq += uint64(l)
			}
		case pathRuleTail:
			// emitted by the head
		case pathTCG:
			if e.Cfg.ManualABI && manualEmittable(body[i]) {
				if err := e.emitManual(a, body[i], mapping); err != nil {
					return em, fmt.Errorf("inst %d %q: %w", i, body[i], err)
				}
				em.covered++
				continue
			}
			em.uncovered = append(em.uncovered, body[i].Op)
			if err := e.emitTCG(a, body[i], pc+uint32(i*guest.InstBytes), mapping); err != nil {
				return em, fmt.Errorf("inst %d %q: %w", i, body[i], err)
			}
		}
	}
	return em, nil
}

// elevates reports whether any used rule is flagged for elevated-rate
// shadow sampling.
func (e *Engine) elevates(used []*rule.Template) bool {
	if e.Cfg.ShadowElevate == nil {
		return false
	}
	for _, t := range used {
		if e.Cfg.ShadowElevate(t) {
			return true
		}
	}
	return false
}

// directLinks returns the statically known successor slots of the block
// at pc: the branch target and — for a conditional branch — the
// fallthrough. Indirect terminators (bx, pop {pc}, mov pc) have no
// static successors and never chain.
func directLinks(pc uint32, insts []guest.Inst) []blockLink {
	n := len(insts)
	term := insts[n-1]
	termPC := pc + uint32((n-1)*guest.InstBytes)
	fall := termPC + guest.InstBytes
	switch term.Op {
	case guest.B:
		target := fall + uint32(term.Ops[0].Imm)*guest.InstBytes
		if term.Cond == guest.AL || target == fall {
			return []blockLink{{target: target}}
		}
		return []blockLink{{target: fall}, {target: target}}
	case guest.BL:
		return []blockLink{{target: fall + uint32(term.Ops[0].Imm)*guest.InstBytes}}
	}
	return nil
}

// ruleUsable applies the static gating rules: flag-setting derived rules
// need the condition-flag machinery (paper §IV-B — without delegation,
// parameterized rules cannot absorb flag side effects), and every
// accepted flag-setting rule must either be materializable or — for
// rules with no materialization recipe, like S-shifts — actually get
// delegated (checked later; needsDeleg marks them for demotion if not).
func (e *Engine) ruleUsable(t *rule.Template) (usable, needsDeleg bool) {
	if t == nil {
		return false, false
	}
	if !t.SetsFlags || t.BranchTail {
		return true, false
	}
	if t.Origin != rule.OriginLearned && !e.Cfg.DelegateFlags {
		return false, false
	}
	if core.FlagsMaterializable(t.Flags, t.FlagSrc == rule.FamLogic) {
		return true, false
	}
	if e.Cfg.DelegateFlags && t.Flags.NZMatch {
		return true, true
	}
	return false, false
}

// demote turns a rule window back into per-instruction TCG.
func demote(plans []iplan, head int) {
	l := plans[head].tmpl.GuestLen()
	for j := 0; j < l; j++ {
		plans[head+j] = iplan{kind: pathTCG}
	}
}

// allocRegs maps the most-used guest registers onto blockRegs.
func (e *Engine) allocRegs(insts []guest.Inst) map[guest.Reg]host.Reg {
	if e.Cfg.NoBlockRegAlloc {
		return map[guest.Reg]host.Reg{}
	}
	var counts [guest.NumRegs]int
	bump := func(r guest.Reg) {
		if r != guest.PC {
			counts[r]++
		}
	}
	for _, in := range insts {
		if d, ok := in.DstReg(); ok {
			bump(d)
		}
		for _, r := range in.SrcRegs(nil) {
			bump(r)
		}
	}
	type rc struct {
		r guest.Reg
		c int
	}
	var list []rc
	for r, c := range counts {
		if c > 0 {
			list = append(list, rc{guest.Reg(r), c})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].c != list[j].c {
			return list[i].c > list[j].c
		}
		return list[i].r < list[j].r
	})
	m := map[guest.Reg]host.Reg{}
	for i := 0; i < len(list) && i < len(e.blockRegs); i++ {
		m[list[i].r] = e.blockRegs[i]
	}
	return m
}

// stagingNeed counts temp-pool registers a rule application requires:
// one per distinct unmapped bound guest register plus the template's
// scratch demand.
func (e *Engine) stagingNeed(t *rule.Template, b rule.Binding, mapping map[guest.Reg]host.Reg) int {
	seen := map[guest.Reg]bool{}
	need := t.NScratch
	for p, k := range t.Params {
		if k != rule.PReg {
			continue
		}
		r := b.Regs[p]
		if _, mapped := mapping[r]; !mapped && !seen[r] {
			seen[r] = true
			need++
		}
	}
	return need
}

// planDelegation decides, per flag-setting instruction, whether its
// flags can stay in the host EFLAGS for the terminator branch.
func (e *Engine) planDelegation(insts []guest.Inst, plans []iplan) {
	if !e.Cfg.DelegateFlags {
		return
	}
	n := len(insts)
	term := insts[n-1]
	if term.Op != guest.B || term.Cond == guest.AL {
		return
	}
	// Find the last flag setter before the terminator.
	setter := -1
	for i := n - 2; i >= 0; i-- {
		if insts[i].SetsFlags() {
			setter = i
			break
		}
	}
	if setter < 0 || plans[setter].kind != pathRule {
		return
	}
	t := plans[setter].tmpl
	if !t.SetsFlags {
		return
	}
	// Window check (paper: 3 instructions).
	if n-1-setter > e.Cfg.FlagWindow {
		return
	}
	// No other consumer may sit between setter and terminator, and the
	// intervening instructions' host code must preserve EFLAGS.
	for j := setter + 1; j < n-1; j++ {
		if insts[j].ReadsFlags() || insts[j].SetsFlags() {
			return
		}
		p := plans[j]
		switch p.kind {
		case pathRule:
			for _, h := range p.tmpl.Host {
				if h.Op.WritesFlags() {
					return
				}
			}
		case pathRuleTail:
			// covered by its head's check
		default:
			return // TCG code clobbers EFLAGS
		}
	}
	// The terminator's condition must be expressible.
	if _, ok := core.DelegateCond(t.Flags, term.Cond); !ok {
		return
	}
	// The rule's own host code must not write EFLAGS after its anchor;
	// the verifier's correspondence was computed at sequence end, so any
	// final EFLAGS writer is the one it describes. Nothing to re-check.
	plans[setter].delegated = true
}

// emitPrologue loads mapped guest registers from the CPUState.
func (e *Engine) emitPrologue(a *host.Asm, mapping map[guest.Reg]host.Reg) {
	a.SetCat(host.CatDataTransfer)
	for _, gr := range sortedRegs(mapping) {
		a.Emit(host.I(host.MOVL, host.R(mapping[gr]), host.Mem(host.EBP, env.OffReg(int(gr)))))
	}
	a.SetCat(host.CatCompute)
}

// emitEpilogue stores mapped guest registers back to the CPUState.
func (e *Engine) emitEpilogue(a *host.Asm, mapping map[guest.Reg]host.Reg) {
	a.SetCat(host.CatDataTransfer)
	for _, gr := range sortedRegs(mapping) {
		a.Emit(host.I(host.MOVL, host.Mem(host.EBP, env.OffReg(int(gr))), host.R(mapping[gr])))
	}
	a.SetCat(host.CatControl)
}

func sortedRegs(m map[guest.Reg]host.Reg) []guest.Reg {
	var out []guest.Reg
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// emitRule applies a matched rule: stage unmapped guest registers into
// temp registers, instantiate the template, materialize flags unless
// delegated, and write back.
func (e *Engine) emitRule(a *host.Asm, head guest.Inst, p iplan, mapping map[guest.Reg]host.Reg) error {
	t, b := p.tmpl, p.bind

	free := append([]host.Reg(nil), e.tempPool...)
	take := func() (host.Reg, error) {
		if len(free) == 0 {
			return 0, fmt.Errorf("temp pool exhausted")
		}
		r := free[len(free)-1]
		free = free[:len(free)-1]
		return r, nil
	}

	staged := map[guest.Reg]host.Reg{}
	a.SetCat(host.CatDataTransfer)
	for pi, k := range t.Params {
		if k != rule.PReg {
			continue
		}
		gr := b.Regs[pi]
		if _, mapped := mapping[gr]; mapped {
			continue
		}
		if _, done := staged[gr]; done {
			continue
		}
		hr, err := take()
		if err != nil {
			return err
		}
		staged[gr] = hr
		a.Emit(host.I(host.MOVL, host.R(hr), host.Mem(host.EBP, env.OffReg(int(gr)))))
	}
	a.SetCat(host.CatCompute)

	var scratch []host.Reg
	for i := 0; i < t.NScratch; i++ {
		hr, err := take()
		if err != nil {
			return err
		}
		scratch = append(scratch, hr)
	}

	regOf := func(r guest.Reg) (host.Reg, bool) {
		if hr, ok := mapping[r]; ok {
			return hr, true
		}
		if hr, ok := staged[r]; ok {
			return hr, true
		}
		return 0, false
	}
	insts, err := rule.InstantiateChecked(t, b, regOf, scratch, e.be.CheckRuleInst)
	if err != nil {
		return err
	}
	a.EmitAll(insts...)

	// Branch-tail rules consume their flags in the terminator's jcc;
	// everything else materializes unless delegated.
	if t.SetsFlags && !p.delegated && !t.BranchTail {
		mr, err := take()
		if err != nil {
			return err
		}
		emitMaterialize(a, t, mr)
	}

	// Write back unmapped written guest registers.
	a.SetCat(host.CatDataTransfer)
	for _, gr := range writtenRegs(t, b) {
		if hr, ok := staged[gr]; ok {
			a.Emit(host.I(host.MOVL, host.Mem(host.EBP, env.OffReg(int(gr))), host.R(hr)))
		}
	}
	a.SetCat(host.CatCompute)
	return nil
}

// emitMaterialize writes the guest NZCV words from the host EFLAGS per
// the rule's verified correspondence, using mr as the setcc staging
// register. For the logic family C is architecturally unchanged, so the
// CPUState C word stays valid and is not written.
func emitMaterialize(a *host.Asm, t *rule.Template, mr host.Reg) {
	set := func(c host.Cond, off int32) {
		a.Emit(host.Inst{Op: host.SETCC, Cond: c, Dst: host.R(mr)})
		a.Emit(host.I(host.MOVL, host.Mem(host.EBP, off), host.R(mr)))
	}
	// C and V must be captured before SETCC sequences… SETCC does not
	// modify EFLAGS, so order is free; match the TCG backend's order.
	if t.FlagSrc != rule.FamLogic {
		if t.Flags.CMatch {
			set(host.B, env.OffC)
		} else {
			set(host.AE, env.OffC)
		}
		set(host.O, env.OffV)
	} else {
		a.Emit(host.I(host.MOVL, host.Mem(host.EBP, env.OffV), host.Imm(0)))
	}
	set(host.S, env.OffN)
	set(host.E, env.OffZ)
}

// writtenRegs lists the distinct guest registers the rule writes.
func writtenRegs(t *rule.Template, b rule.Binding) []guest.Reg {
	var out []guest.Reg
	seen := map[guest.Reg]bool{}
	for _, g := range t.Guest {
		switch g.Op {
		case guest.CMP, guest.CMN, guest.TST, guest.TEQ, guest.STR, guest.STRB:
			continue
		}
		if len(g.Args) == 0 || g.Args[0].Kind != guest.KindReg {
			continue
		}
		r := b.Regs[g.Args[0].Param]
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// lowerIR routes one generated IR sequence through the backend's
// instruction emitter into the shared assembler — the single lowering
// entry both the TCG fallback and the terminator's condition
// evaluation use (they previously duplicated the NewGen/regmap/Lower
// plumbing).
func (e *Engine) lowerIR(a *host.Asm, g *tcg.Gen, mapping map[guest.Reg]host.Reg) error {
	return e.be.Lower(a, g, e.regmap(mapping), e.tempPool)
}

// emitTCG lowers one guest instruction through the TCG pipeline.
func (e *Engine) emitTCG(a *host.Asm, in guest.Inst, pc uint32, mapping map[guest.Reg]host.Reg) error {
	g := tcg.NewGen(a.NewLabel)
	if err := g.Translate(in, pc); err != nil {
		return err
	}
	return e.lowerIR(a, g, mapping)
}

func (e *Engine) regmap(mapping map[guest.Reg]host.Reg) func(guest.Reg) host.Operand {
	return func(r guest.Reg) host.Operand {
		if hr, ok := mapping[r]; ok {
			return host.R(hr)
		}
		return host.Mem(host.EBP, env.OffReg(int(r)))
	}
}

// emitTerminator ends the block: evaluate the branch, store mapped
// registers, and exit with the next guest PC. Both exit paths carry
// their own epilogue (QEMU's two goto_tb stubs). It reports whether the
// terminator itself counts as rule-covered: true for the jcc of a
// branch-tail rule and for a delegated conditional branch — in both
// cases no emulation code is emitted for it, only the universal exit
// stubs.
func (e *Engine) emitTerminator(a *host.Asm, term guest.Inst, pc uint32, plans []iplan, termRule *iplan, mapping map[guest.Reg]host.Reg) (bool, error) {
	fall := pc + guest.InstBytes
	exitImm := func(target uint32) { e.exitTo(a, target, mapping) }

	switch term.Op {
	case guest.HLT:
		exitImm(HaltPC)
		return false, nil

	case guest.B:
		target := pc + guest.InstBytes + uint32(term.Ops[0].Imm)*guest.InstBytes
		if term.Cond == guest.AL {
			exitImm(target)
			return false, nil
		}
		taken := a.NewLabel()
		covered := false
		// Branch-tail rule: the matched rule's host code left EFLAGS
		// ready; finish with its jcc.
		delegatedFrom := -1
		for i := range plans {
			if plans[i].delegated {
				delegatedFrom = i
			}
		}
		switch {
		case termRule != nil:
			a.SetCat(host.CatControl)
			a.Emit(host.Jcc(termRule.tmpl.HCond, taken))
			a.SetCat(host.CatCompute)
			covered = true
		case delegatedFrom >= 0:
			hc, ok := core.DelegateCond(plans[delegatedFrom].tmpl.Flags, term.Cond)
			if !ok {
				return false, fmt.Errorf("delegation planned but condition unmappable")
			}
			a.SetCat(host.CatControl)
			a.Emit(host.Jcc(hc, taken))
			a.SetCat(host.CatCompute)
			covered = true
		default:
			start := a.Len()
			g := tcg.NewGen(a.NewLabel)
			v := g.EvalCond(term.Cond)
			g.Insts = append(g.Insts, tcg.Inst{Op: tcg.Brnz, A: v, Label: taken, Dst: -1})
			if err := e.lowerIR(a, g, mapping); err != nil {
				return false, err
			}
			retag(a, start, host.CatControl)
		}
		exitImm(fall)
		a.Bind(taken)
		exitImm(target)
		return covered, nil

	case guest.BL:
		target := pc + guest.InstBytes + uint32(term.Ops[0].Imm)*guest.InstBytes
		a.SetCat(host.CatControl)
		if hr, ok := mapping[guest.LR]; ok {
			a.Emit(host.I(host.MOVL, host.R(hr), host.Imm(int32(fall))))
		} else {
			a.Emit(host.I(host.MOVL, host.Mem(host.EBP, env.OffReg(int(guest.LR))), host.Imm(int32(fall))))
		}
		a.SetCat(host.CatCompute)
		exitImm(target)
		return false, nil

	case guest.BX:
		r := term.Ops[0].Reg
		if hr, ok := mapping[r]; ok {
			e.emitEpilogue(a, mapping)
			a.SetCat(host.CatControl)
			a.Emit(host.Exit(host.R(hr)))
			a.SetCat(host.CatCompute)
			return false, nil
		}
		a.SetCat(host.CatControl)
		a.Emit(host.I(host.MOVL, host.R(host.EAX), host.Mem(host.EBP, env.OffReg(int(r)))))
		a.SetCat(host.CatCompute)
		e.emitEpilogue(a, mapping)
		a.SetCat(host.CatControl)
		a.Emit(host.Exit(host.R(host.EAX)))
		a.SetCat(host.CatCompute)
		return false, nil

	case guest.POP:
		// pop {..., pc}: pop the non-PC registers, bump SP over the PC
		// slot, and exit with the value that slot held.
		list := term.Ops[0].List &^ (1 << uint(guest.PC))
		if list != 0 {
			sub := guest.NewInst(guest.POP, guest.Operand{Kind: guest.KindRegList, List: list})
			if err := e.emitTCG(a, sub, pc, mapping); err != nil {
				return false, err
			}
		}
		bump := guest.NewInst(guest.ADD, guest.RegOp(guest.SP), guest.RegOp(guest.SP), guest.ImmOp(4))
		if err := e.emitTCG(a, bump, pc, mapping); err != nil {
			return false, err
		}
		a.SetCat(host.CatControl)
		spOp := e.regmap(mapping)(guest.SP)
		if spOp.Kind == host.KindReg {
			a.Emit(host.I(host.MOVL, host.R(host.EAX), host.Mem(spOp.Reg, -4)))
		} else {
			a.Emit(host.I(host.MOVL, host.R(host.EAX), spOp))
			a.Emit(host.I(host.MOVL, host.R(host.EAX), host.Mem(host.EAX, -4)))
		}
		a.SetCat(host.CatCompute)
		e.emitEpilogue(a, mapping)
		a.SetCat(host.CatControl)
		a.Emit(host.Exit(host.R(host.EAX)))
		a.SetCat(host.CatCompute)
		return false, nil
	}

	// PC-writing data instructions (mov pc, lr style).
	if d, ok := term.DstReg(); ok && d == guest.PC && term.Op == guest.MOV &&
		term.Cond == guest.AL && term.Ops[1].Kind == guest.KindReg {
		src := term.Ops[1].Reg
		a.SetCat(host.CatControl)
		srcOp := e.regmap(mapping)(src)
		a.Emit(host.I(host.MOVL, host.R(host.EAX), srcOp))
		a.SetCat(host.CatCompute)
		e.emitEpilogue(a, mapping)
		a.SetCat(host.CatControl)
		a.Emit(host.Exit(host.R(host.EAX)))
		a.SetCat(host.CatCompute)
		return false, nil
	}

	return false, fmt.Errorf("dbt: unsupported terminator %q", term)
}

// exitTo emits one complete immediate exit path: epilogue (store mapped
// guest registers) plus the exit_tb carrying the next guest pc (QEMU's
// goto_tb stub). Shared by block terminators and superblock side exits.
func (e *Engine) exitTo(a *host.Asm, target uint32, mapping map[guest.Reg]host.Reg) {
	e.emitEpilogue(a, mapping)
	a.SetCat(host.CatControl)
	a.Emit(host.Exit(host.Imm(int32(target))))
	a.SetCat(host.CatCompute)
}

// retag rewrites the category of instructions emitted since start.
func retag(a *host.Asm, start int, cat host.Category) {
	insts := a.Insts()
	for i := start; i < len(insts); i++ {
		insts[i].Cat = cat
	}
}

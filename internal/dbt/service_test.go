package dbt

import (
	"sync"
	"testing"

	"paramdbt/internal/backend"
	"paramdbt/internal/core"
	"paramdbt/internal/env"
	"paramdbt/internal/guard/faultinject"
	"paramdbt/internal/guest"
	"paramdbt/internal/mem"
	"paramdbt/internal/minic"
	"paramdbt/internal/rule"
)

// These tests cover the shared translation service (service.go,
// docs/SERVING.md). They run under `make test-serve`, including a -race
// arm — keep the TestService/TestAdaptive/TestStoreReseed name
// prefixes, they are the gate's -run pattern.

// serveRules learns and parameterizes the shared store the service
// tests run over (full parameterization, the serving default).
func serveRules(t *testing.T) *rule.Store {
	t.Helper()
	_, par := learnRules(t, testProgram(), core.Config{Opcode: true, AddrMode: true})
	return par
}

// startTenant builds an engine over a fresh load of c attached to svc
// (any extra knobs via cfg; Rules/Service are filled in here).
func startTenant(t *testing.T, c *minic.Compiled, svc *Service, cfg Config) *Engine {
	t.Helper()
	cfg.Rules = svc.cfg.Rules
	cfg.Service = svc
	cfg.DelegateFlags = svc.cfg.DelegateFlags
	return startEngine(t, c, cfg)
}

// TestServiceSingleFlight is the dedupe scenario: two tenants
// demand-missing the same pc concurrently must produce exactly one
// translation — the single-flight leader counts it, the duplicate
// adopts it — so the tenants' summed dbt.translations deltas equal the
// work actually done.
func TestServiceSingleFlight(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	par := serveRules(t)
	svc := NewService(ServiceConfig{Rules: par, DelegateFlags: true, SpecDepth: -1})
	defer svc.Close()

	e1 := startTenant(t, c, svc, Config{})
	e2 := startTenant(t, c, svc, Config{})
	if e1.svc == nil || e2.svc == nil {
		t.Fatal("tenants did not attach")
	}
	if e1.tnt.snap != e2.tnt.snap {
		t.Fatal("identical programs did not share a code snapshot")
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, e := range []*Engine{e1, e2} {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			<-start
			tb, err := e.block(env.CodeBase)
			if err != nil {
				t.Errorf("block: %v", err)
				return
			}
			if tb == nil {
				t.Error("block returned nil")
			}
		}(e)
	}
	close(start)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	sum := e1.LiveStats().Translations + e2.LiveStats().Translations
	if sum != 1 {
		t.Fatalf("summed tenant translations = %d, want exactly 1", sum)
	}
	st := svc.Stats()
	if st.Translations != 1 {
		t.Fatalf("service translations = %d, want 1", st.Translations)
	}
	if st.Requests != 2 || st.CacheHits+st.DedupHits != 1 {
		t.Fatalf("requests=%d cache=%d dedup=%d, want 2 requests and 1 deduplicated",
			st.Requests, st.CacheHits, st.DedupHits)
	}

	// Both tenants then run the adopted translations to completion and
	// the leader-only accounting invariant holds for the whole run.
	for i, e := range []*Engine{e1, e2} {
		if _, err := e.Run(env.CodeBase, 100_000_000); err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
		sameResult(t, want, e.GuestState(), "single-flight tenant")
	}
	sum = e1.LiveStats().Translations + e2.LiveStats().Translations
	if got := svc.Stats().Translations; sum != got {
		t.Fatalf("summed tenant translations = %d, service performed %d", sum, got)
	}
}

// TestServiceTenantsShareWork checks the sharing win: N tenants running
// the same program through one service translate each block once in
// total, strictly less than N independent engines would.
func TestServiceTenantsShareWork(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	par := serveRules(t)

	solo, soloStats := runProgram(t, c, Config{Rules: par, DelegateFlags: true})
	sameResult(t, want, solo, "solo baseline")

	svc := NewService(ServiceConfig{Rules: par, DelegateFlags: true})
	defer svc.Close()
	const tenants = 4
	var wg sync.WaitGroup
	engines := make([]*Engine, tenants)
	for i := 0; i < tenants; i++ {
		engines[i] = startTenant(t, c, svc, Config{})
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			if _, err := e.Run(env.CodeBase, 100_000_000); err != nil {
				t.Errorf("tenant run: %v", err)
			}
		}(engines[i])
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var sum uint64
	for _, e := range engines {
		sameResult(t, want, e.GuestState(), "shared tenant")
		sum += e.LiveStats().Translations
	}
	st := svc.Stats()
	if sum != st.Translations {
		t.Fatalf("summed tenant translations = %d, service performed %d", sum, st.Translations)
	}
	total := st.Translations + st.SpecTranslations
	independent := uint64(tenants) * soloStats.Translations
	if total >= independent {
		t.Fatalf("service translated %d blocks, %d independent engines would translate %d",
			total, tenants, independent)
	}
	if st.DedupRate() == 0 {
		t.Fatalf("no dedupe recorded across %d identical tenants: %+v", tenants, st)
	}
}

// TestServiceOverloadFallsBack checks backpressure: with no workers and
// the one-slot demand queue already full, every request fails fast with
// the typed overload error and the tenant translates locally — the run
// still finishes correctly.
func TestServiceOverloadFallsBack(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	par := serveRules(t)
	svc := NewService(ServiceConfig{Rules: par, DelegateFlags: true, Workers: -1, QueueDepth: 1, SpecDepth: -1})
	defer svc.Close()
	// Fill the queue: nothing drains it (Workers < 0), so every tenant
	// enqueue hits the full-queue branch deterministically.
	svc.demand <- &svcCall{done: make(chan struct{})}

	e := startTenant(t, c, svc, Config{})
	st, err := e.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, e.GuestState(), "overloaded tenant")
	ss := svc.Stats()
	if ss.Overloads == 0 {
		t.Fatal("full queue recorded no overloads")
	}
	if ss.Translations != 0 {
		t.Fatalf("workerless service performed %d translations", ss.Translations)
	}
	if st.Translations == 0 {
		t.Fatal("tenant recorded no local fallback translations")
	}
}

// TestServiceClosedFallsBack: attach against a closed service is
// refused, and a service closed after attach turns requests into
// ErrServiceClosed — both leave the tenant translating locally.
func TestServiceClosedFallsBack(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	par := serveRules(t)

	closed := NewService(ServiceConfig{Rules: par, DelegateFlags: true})
	closed.Close()
	e := startTenant(t, c, closed, Config{})
	if e.svc != nil {
		t.Fatal("tenant attached to a closed service")
	}
	if _, err := e.Run(env.CodeBase, 100_000_000); err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, e.GuestState(), "refused tenant")

	svc := NewService(ServiceConfig{Rules: par, DelegateFlags: true})
	e2 := startTenant(t, c, svc, Config{})
	if e2.svc == nil {
		t.Fatal("tenant did not attach")
	}
	svc.Close()
	st, err := e2.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, e2.GuestState(), "tenant outliving service")
	if st.Translations == 0 {
		t.Fatal("tenant of a closed service translated nothing locally")
	}
}

// TestServiceShutdownDrains: demand requests queued when Close is
// called are still served — Close returns only after the workers'
// drain sweep has resolved (and woken) every queued call.
func TestServiceShutdownDrains(t *testing.T) {
	c := compileT(t, testProgram())
	par := serveRules(t)
	svc := NewService(ServiceConfig{Rules: par, DelegateFlags: true, Workers: 1, QueueDepth: 16, SpecDepth: -1})
	e := startTenant(t, c, svc, Config{})
	if e.svc == nil {
		t.Fatal("tenant did not attach")
	}

	key := serviceKey{code: e.tnt.code, pc: env.CodeBase}
	calls := make([]*svcCall, 8)
	for i := range calls {
		calls[i] = &svcCall{key: key, snap: e.tnt.snap, done: make(chan struct{})}
		svc.demand <- calls[i]
	}
	svc.Close()

	for i, cl := range calls {
		select {
		case <-cl.done:
		default:
			t.Fatalf("call %d not resolved by Close", i)
		}
		if cl.err != nil {
			t.Fatalf("call %d: %v", i, cl.err)
		}
		if cl.tb == nil {
			t.Fatalf("call %d resolved without a translation", i)
		}
	}
	if _, ok := svc.cache.Load(key); !ok {
		t.Fatal("drained translation not published to the prototype cache")
	}
}

// TestServicePurgeOnQuarantine: a tenant's shadow layer catching a
// corrupted rule must also evict the service's prototypes built from it
// (the shared store quarantine keeps it out of fresh ones), so a second
// tenant runs clean.
func TestServicePurgeOnQuarantine(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	par := serveRules(t)
	bad := corruptUsedAddRule(t, c, par)

	svc := NewService(ServiceConfig{Rules: par, DelegateFlags: true})
	defer svc.Close()
	e1 := startTenant(t, c, svc, Config{ShadowRate: 1})
	if e1.svc == nil {
		t.Fatal("tenant did not attach")
	}
	st1, err := e1.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, e1.GuestState(), "diverging tenant recovered")
	if st1.Divergences == 0 || !par.IsQuarantined(bad) {
		t.Fatalf("corrupted rule not caught: %+v", st1)
	}
	if svc.Stats().Purged == 0 {
		t.Fatal("quarantine purged no service prototypes")
	}
	svc.cache.Range(func(_, v any) bool {
		for _, tm := range v.(*tblock).rules {
			if tm == bad {
				t.Fatal("quarantined rule still embedded in a cached prototype")
			}
		}
		return true
	})

	e2 := startTenant(t, c, svc, Config{ShadowRate: 1})
	st2, err := e2.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, e2.GuestState(), "post-quarantine tenant")
	if st2.Divergences != 0 {
		t.Fatalf("second tenant diverged %d times after the purge", st2.Divergences)
	}
}

// TestServiceIncompatibleTenant: tenants whose translation shape or
// fault plan disagrees with the service must be refused at attach and
// run correctly on the local path.
func TestServiceIncompatibleTenant(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	par := serveRules(t)
	svc := NewService(ServiceConfig{Rules: par, DelegateFlags: true})
	defer svc.Close()

	cases := []struct {
		name string
		cfg  Config
	}{
		{"peephole mismatch", Config{Rules: par, DelegateFlags: true, Peephole: true, Service: svc}},
		{"flags mismatch", Config{Rules: par, Service: svc}},
		{"different store", Config{Rules: serveRules(t), DelegateFlags: true, Service: svc}},
		{"fault plan", Config{Rules: par, DelegateFlags: true, Service: svc,
			Faults: faultinject.New(faultinject.Plan{})}},
	}
	for _, tc := range cases {
		e := startEngine(t, c, tc.cfg)
		if e.svc != nil {
			t.Fatalf("%s: tenant attached", tc.name)
		}
		if _, err := e.Run(env.CodeBase, 100_000_000); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sameResult(t, want, e.GuestState(), tc.name)
	}
	if st := svc.Stats(); st.Tenants != 0 || st.Requests != 0 {
		t.Fatalf("refused tenants still reached the service: %+v", st)
	}
}

// TestServiceSMCDetach: the first guest code write makes the service's
// registered code snapshot stale, so the fence must detach the tenant;
// the run finishes on local translation with the patched semantics.
func TestServiceSMCDetach(t *testing.T) {
	p := smcProfile(t, "smc-cross")
	svc := NewService(ServiceConfig{})
	defer svc.Close()

	m := mem.New()
	if err := guest.LoadProgram(m, env.CodeBase, p.Prog); err != nil {
		t.Fatal(err)
	}
	e := New(m, Config{Service: svc})
	e.SetGuestState(&guest.State{Mem: m})
	if e.svc == nil {
		t.Fatal("tenant did not attach")
	}
	st, err := e.Run(env.CodeBase, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.GuestState().R[guest.R0]; got != 420 {
		t.Fatalf("r0 = %d, want 420", got)
	}
	if st.SMCInvalidations == 0 {
		t.Fatalf("no SMC invalidations recorded: %+v", st)
	}
	if e.svc != nil || e.tnt != nil {
		t.Fatal("self-modifying tenant still attached to the service")
	}
}

// TestAdaptiveShadowDecays: on a clean run the controller lowers the
// effective shadow rate as verified-clean executions accumulate, so the
// adaptive run checks strictly fewer blocks than the fixed-rate run
// while producing the same result.
func TestAdaptiveShadowDecays(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	par := serveRules(t)

	_, fixed := runProgram(t, c, Config{Rules: par, DelegateFlags: true, ShadowRate: 1})
	if fixed.ShadowChecks == 0 {
		t.Fatal("fixed-rate run recorded no shadow checks")
	}

	m := mem.New()
	if _, err := c.LoadGuest(m); err != nil {
		t.Fatal(err)
	}
	e := New(m, Config{
		Rules: par, DelegateFlags: true,
		ShadowRate: 1, AdaptiveShadow: true, ShadowHalfLife: 8, ShadowMinRate: 0.01,
	})
	init := &guest.State{Mem: m}
	init.R[guest.SP] = env.StackTop
	e.SetGuestState(init)
	st, err := e.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, e.GuestState(), "adaptive clean")
	if st.Divergences != 0 || st.RateSnaps != 0 {
		t.Fatalf("clean adaptive run snapped: %+v", st)
	}
	if st.ShadowChecks == 0 || st.ShadowChecks >= fixed.ShadowChecks {
		t.Fatalf("adaptive checks = %d, fixed = %d; want 0 < adaptive < fixed",
			st.ShadowChecks, fixed.ShadowChecks)
	}
	if now := e.ShadowRateNow(); now >= 1 || now < 0.01 {
		t.Fatalf("decayed rate = %v, want in [MinRate, 1)", now)
	}
}

// TestAdaptiveSnapsOnDivergence: a divergence (here from a corrupted
// rule) must snap the rate back to the base immediately — trust is
// earned slowly and lost instantly — while the run still recovers the
// correct result and quarantines the culprit.
func TestAdaptiveSnapsOnDivergence(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	par := serveRules(t)
	corruptUsedAddRule(t, c, par)

	e := startEngine(t, c, Config{
		Rules: par, DelegateFlags: true,
		ShadowRate: 1, AdaptiveShadow: true, ShadowHalfLife: 8, ShadowMinRate: 0.01,
	})
	st, err := e.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, e.GuestState(), "adaptive corrupt recovered")
	if st.Divergences == 0 {
		t.Fatal("corrupted rule produced no divergences")
	}
	if st.RateSnaps == 0 {
		t.Fatalf("divergence did not snap the rate: %+v", st)
	}
	if par.QuarantineLen() == 0 {
		t.Fatal("nothing quarantined")
	}
}

// TestAdaptiveElevatedRuleStaysElevated pins the PR 4 policy: decay
// applies to the base rate only — blocks carrying ShadowElevate-flagged
// rules keep verifying at ShadowElevatedRate no matter how far the
// controller has decayed (see guard.Sampler.SelectWith).
func TestAdaptiveElevatedRuleStaysElevated(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	par := serveRules(t)

	// Elevate every rule the program uses: with the base rate decayed to
	// the floor, shadow checks must still track every covered block.
	e := startEngine(t, c, Config{
		Rules: par, DelegateFlags: true,
		ShadowRate: 1, AdaptiveShadow: true, ShadowHalfLife: 2, ShadowMinRate: 0.01,
		ShadowElevate: func(*rule.Template) bool { return true }, ShadowElevatedRate: 1,
	})
	st, err := e.Run(env.CodeBase, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, e.GuestState(), "elevated adaptive")
	if now := e.ShadowRateNow(); now >= 1 {
		t.Fatalf("base rate did not decay: %v", now)
	}
	// Every execution of an elevated (rule-covered) block is verified;
	// with HalfLife 2 the base rate hits the floor almost immediately, so
	// a fixed-floor sampler would check far fewer blocks than this.
	if st.ShadowChecks == 0 || st.RuleCovered == 0 {
		t.Fatalf("elevated blocks not verified: %+v", st)
	}
	minElevated := st.ShadowChecks >= uint64(st.Blocks)
	if !minElevated {
		t.Fatalf("shadow checks = %d with %d blocks; elevation did not hold", st.ShadowChecks, st.Blocks)
	}
}

// TestStoreReseedStress hammers the rule store's atomic retrieval
// index: service workers translate on one backend while misconfigured
// tenants concurrently construct engines for the other backend over the
// same store (each construction rekeys the index). Run under -race via
// `make test-serve`.
func TestStoreReseedStress(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	par := serveRules(t)

	x86 := backend.MustLookup("x86")
	risc := backend.MustLookup("risc")
	svc := NewService(ServiceConfig{Rules: par, DelegateFlags: true, Backend: x86})
	defer svc.Close()

	// x86 tenants translate through the service while risc engines are
	// concurrently constructed over the same store (each New rekeys its
	// retrieval index) and refused by the x86 service.
	backends := []backend.Backend{x86, x86, x86, x86, risc, risc, risc, risc}
	engines := make([]*Engine, len(backends))
	var wg sync.WaitGroup
	for i, be := range backends {
		m := mem.New()
		if _, err := c.LoadGuest(m); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, be backend.Backend, m *mem.Memory) {
			defer wg.Done()
			e := New(m, Config{Rules: par, DelegateFlags: true, Backend: be, Service: svc})
			init := &guest.State{Mem: m}
			init.R[guest.SP] = env.StackTop
			e.SetGuestState(init)
			if _, err := e.Run(env.CodeBase, 100_000_000); err != nil {
				t.Error(err)
				return
			}
			engines[i] = e
		}(i, be, m)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, e := range engines {
		sameResult(t, want, e.GuestState(), "engine under reseed")
		if backends[i].ID() == risc.ID() && e.svc != nil {
			t.Fatal("risc tenant attached to the x86 service")
		}
	}
}

package dbt

import (
	"fmt"

	"paramdbt/internal/guest"
	"paramdbt/internal/mem"
	"paramdbt/internal/obs"
)

// This file is the engine half of self-modifying-code (SMC) safety; the
// store-side tracking lives in internal/mem/track.go and the design in
// docs/ROBUSTNESS.md "Self-modifying code". The invariant it maintains:
// no host code translated from guest bytes that have since been
// overwritten ever executes past the overwriting store.
//
// Mechanism, in dispatch-loop order:
//
//   - registration: every translation that reaches the cache has the
//     pages its guest bytes live on registered with the write tracker
//     (initSMCMeta, installSB), so guest stores there are recorded.
//   - the fence: before following a chain link or dispatching, the loop
//     drains the tracker's dirty pages and invalidates every cached
//     translation overlapping one (smcFence) — Engine.Invalidate tears
//     down covering superblocks through sbIndex, unpatches chain links,
//     bumps cacheGen so in-flight builder results are discarded, and
//     shuts the builder down. The very next dispatch retranslates from
//     the current bytes.
//   - the self case: a store inside the executing translation's own
//     guest ranges cannot wait for the fence — the stale host code is
//     already running. The tracker's armed undo journal and self-range
//     detection flag the execution (SMCSelfHit); smcSelfAbort then rolls
//     every store of that execution back and replays the block on the
//     reference interpreter from its entry, decoding each instruction
//     from live memory, stopping precisely after the first instruction
//     that stores into a tracked page. Execution resumes through the
//     dispatcher, which retranslates from the new bytes.
//
// Translated host code is straight-line per execution (no backward
// branches; loops re-enter through the dispatcher), so letting the
// stale block run to its exit before aborting is safe: every store it
// makes is journaled and undone, and the replay re-derives the true
// architectural state. A host execution error after a self hit is
// treated the same way — the stale tail's effects are discarded either
// way.

// smcStores marks the guest opcodes that write memory; translations
// containing none skip journal arming entirely.
func instHasStore(in guest.Inst) bool {
	switch in.Op {
	case guest.STR, guest.STRB, guest.FSTR, guest.PUSH:
		return true
	}
	return false
}

// initSMCMeta computes a translation's SMC metadata — whether it
// contains guest stores, and the guest address ranges it was decoded
// from — and registers its pages with the write tracker. Called on the
// Run goroutine the first time a translation is seen by the dispatcher
// (which also covers blocks inserted by speculative workers: they are
// only ever entered through a dispatch or a chain link patched after
// one).
func (e *Engine) initSMCMeta(pc uint32, tb *tblock) {
	lo, hi := pc, pc+uint32(tb.nGuest)*guest.InstBytes
	tb.smcRanges = [][2]uint32{{lo, hi}}
	for _, in := range tb.insts {
		if instHasStore(in) {
			tb.hasStores = true
			break
		}
	}
	e.Mem.TrackRange(lo, hi)
	tb.smcDone = true
}

// initSMCMetaSB is initSMCMeta for a superblock: one range per
// constituent (traces need not be address-contiguous).
func (e *Engine) initSMCMetaSB(tb *tblock) {
	sb := tb.sb
	tb.smcRanges = make([][2]uint32, len(sb.pcs))
	for i, hpc := range sb.pcs {
		lo, hi := hpc, hpc+uint32(len(sb.insts[i]))*guest.InstBytes
		tb.smcRanges[i] = [2]uint32{lo, hi}
		e.Mem.TrackRange(lo, hi)
		if tb.hasStores {
			continue
		}
		for _, in := range sb.insts[i] {
			if instHasStore(in) {
				tb.hasStores = true
				break
			}
		}
	}
	tb.smcDone = true
}

// smcOverlaps reports whether the translation's guest ranges touch any
// of the dirty pages.
func smcOverlaps(tb *tblock, pages map[uint32]bool) bool {
	for _, r := range tb.smcRanges {
		for k := r[0] >> mem.PageBits; k <= (r[1]-1)>>mem.PageBits; k++ {
			if pages[k] {
				return true
			}
		}
	}
	return false
}

// smcFence drains the tracker's dirty pages and invalidates every
// cached translation overlapping one. Returns the number of
// translations invalidated (0 when nothing was dirty). Must run on the
// Run goroutine before the next chain-follow or dispatch.
func (e *Engine) smcFence() int {
	pages := e.Mem.TakeDirtyPages()
	if len(pages) == 0 {
		return 0
	}
	// The speculative pool translates from a startup snapshot of the
	// code image; the first guest code write makes that snapshot
	// permanently stale. Demote to demand-only translation for the rest
	// of the run (the pool's shutdown waits out in-flight jobs, so the
	// cache scan below sees every worker insert).
	if e.spec != nil {
		e.spec.shutdown()
		e.spec = nil
	}
	// Same staleness argument detaches a shared translation service:
	// its prototypes were built from the code image this tenant
	// registered at attach time, and that image just changed.
	e.svc, e.tnt = nil, nil
	set := make(map[uint32]bool, len(pages))
	for _, k := range pages {
		set[k] = true
	}
	var pcs []uint32
	e.cache.each(func(pc uint32, tb *tblock) {
		if tb.smcDone && smcOverlaps(tb, set) {
			pcs = append(pcs, pc)
		} else if !tb.smcDone {
			// A worker-inserted translation the dispatcher has not seen
			// yet: its ranges are unknown here and its snapshot may predate
			// the write — drop it rather than reason about it.
			pcs = append(pcs, pc)
		}
	})
	for _, pc := range pcs {
		e.Invalidate(pc)
	}
	// Every translation overlapping the dirty pages is gone; the pages
	// return to the untracked fast path until retranslation re-registers
	// them.
	for _, k := range pages {
		e.Mem.UntrackPage(k)
	}
	e.met.smcInvalidations.Add(uint64(len(pcs)))
	if e.Cfg.Trace != nil {
		for _, pc := range pcs {
			e.Cfg.Trace.Record(obs.EvInvalidate, pc)
		}
	}
	return len(pcs)
}

// smcReplayCap bounds the interpreter replay of an aborted execution:
// the faulting store re-occurs within the same straight-line path, so
// the cap is the translation's own length (per constituent for a
// superblock) plus slack for conditional skips.
func smcReplayCap(tb *tblock) uint64 {
	n := uint64(maxBlockInsts)
	if tb.sb != nil {
		n *= uint64(len(tb.sb.pcs))
	}
	return n + 8
}

// smcSelfAbort recovers from a translation that stored into its own
// guest bytes: roll back every store of the aborted execution, replay
// on the reference interpreter from the entry pc over live memory —
// decoding each instruction fresh, so bytes the replay itself rewrites
// take effect at their next fetch — and stop precisely after the first
// instruction that stores into a tracked page (the architectural
// precise-exit point). The caller resumes dispatch at the returned pc
// with the chain broken; the fence run here has already invalidated
// every translation the store overlapped, including the aborted one.
// Returns the resume pc (HaltPC if the replay halted) and the guest
// instructions retired by the replay.
func (e *Engine) smcSelfAbort(tb *tblock, pc uint32) (uint32, uint64, error) {
	e.Mem.RollbackJournal() // also disarms: replay stores are authoritative
	e.Mem.ClearDirty()      // rolled-back stores left no real dirt
	st := readGuestState(e.Mem)
	st.SetPC(pc)
	var n uint64
	cap := smcReplayCap(tb)
	for {
		if n >= cap {
			return 0, n, fmt.Errorf("dbt: smc replay from pc=%#x retired %d insts without reaching the faulting store", pc, n)
		}
		w := e.Mem.Read32(st.PCVal())
		in, derr := guest.Decode(w)
		if derr != nil {
			return 0, n, fmt.Errorf("dbt: smc replay at pc=%#x: %w", st.PCVal(), derr)
		}
		if serr := st.Step(in); serr != nil {
			return 0, n, fmt.Errorf("dbt: smc replay at pc=%#x: %w", st.PCVal(), serr)
		}
		n++
		if st.Halted || e.Mem.CodeDirty() {
			break
		}
	}
	writeGuestState(e.Mem, st)
	e.met.smcSelfAborts.Inc()
	e.met.guestInsts.Add(n)
	if e.Cfg.Trace != nil {
		e.Cfg.Trace.Record(obs.EvFallback, pc)
	}
	e.smcFence()
	if st.Halted {
		return HaltPC, n, nil
	}
	return st.PCVal(), n, nil
}

// codePoker is the optional fault-injection extension for deterministic
// SMC campaigns: when Config.Faults also implements it, the dispatch
// loop asks before every dispatch ordinal for guest code writes to
// apply (on the Run goroutine, through the tracked store path — so the
// pokes exercise exactly the fence machinery a guest store does).
// faultinject.Injector implements it structurally.
type codePoker interface {
	// CodePokes returns the (addr, word) stores to apply before dispatch
	// ordinal n (1-based). Must be a pure function of n for determinism.
	CodePokes(n uint64) [][2]uint32
}

package dbt

import (
	"testing"

	"paramdbt/internal/core"
	"paramdbt/internal/env"
	"paramdbt/internal/guest"
	"paramdbt/internal/learn"
	"paramdbt/internal/minic"
	"paramdbt/internal/rule"
	"paramdbt/internal/workload"
)

// TestManualABIReachesFullCoverage checks the §V-B2 extension: with the
// hand-written translations added, coverage approaches 100% and results
// stay correct.
func TestManualABIReachesFullCoverage(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	_, par := learnRules(t, trainProgram(), core.Config{Opcode: true, AddrMode: true})

	got, stats := runProgram(t, c, Config{Rules: par, DelegateFlags: true, ManualABI: true})
	sameResult(t, want, got, "manual abi")
	_, plain := runProgram(t, c, Config{Rules: par, DelegateFlags: true})
	if stats.Coverage() <= plain.Coverage() {
		t.Fatalf("manual rules did not raise coverage: %.3f vs %.3f",
			stats.Coverage(), plain.Coverage())
	}
	if stats.Coverage() < 0.98 {
		t.Fatalf("manual coverage below 98%%: %.3f", stats.Coverage())
	}
	// Only the hlt terminator (and nothing ABI-related) may remain.
	for op := range stats.UncoveredOps {
		switch op {
		case guest.HLT:
		case guest.CLZ, guest.MLA, guest.UMLA, guest.PUSH, guest.POP,
			guest.B, guest.BL, guest.BX:
			t.Fatalf("%v still uncovered under ManualABI", op)
		}
	}
}

// TestManualPushPopCorrect pins the hand-written stack recipes against
// the interpreter with values that stress ordering.
func TestManualPushPopCorrect(t *testing.T) {
	main := &minic.Func{
		Name: "main", NVars: 2,
		Body: []*minic.Stmt{
			minic.Call(0, 1, minic.C(11), minic.C(31)),
			minic.Call(1, 1, minic.V(0), minic.C(5)),
			minic.Assign(0, minic.B(minic.OpAdd, minic.V(0), minic.V(1))),
			minic.Return(minic.V(0)),
		},
	}
	callee := &minic.Func{
		Name: "f", NArgs: 2, NVars: 5,
		Body: []*minic.Stmt{
			minic.Assign(2, minic.B(minic.OpMul, minic.V(0), minic.C(3))),
			minic.Assign(3, minic.B(minic.OpXor, minic.V(2), minic.V(1))),
			minic.Assign(4, minic.B(minic.OpSub, minic.V(3), minic.V(0))),
			minic.Return(minic.V(4)),
		},
	}
	c := compileT(t, &minic.Program{Funcs: []*minic.Func{main, callee}})
	want := interpret(t, c)
	got, stats := runProgram(t, c, Config{ManualABI: true})
	sameResult(t, want, got, "manual push/pop")
	if stats.UncoveredOps[guest.PUSH] != 0 || stats.UncoveredOps[guest.POP] != 0 {
		t.Fatal("push/pop still emulated")
	}
}

// TestFuzzDifferential is the system-level fuzz: randomly generated
// workload programs (fresh seeds, never used in training) run under
// every engine configuration and must agree with the interpreter on the
// caller-visible state.
func TestFuzzDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz differential is slow")
	}
	// Train once on the standard suite.
	trainStore := rule.NewStore()
	for _, b := range workload.All(1)[:6] {
		cp, err := minic.Compile(b.Prog)
		if err != nil {
			t.Fatal(err)
		}
		learn.FromCompiled(cp, trainStore)
	}
	par, _ := core.Parameterize(trainStore, core.Config{Opcode: true, AddrMode: true})

	configs := []struct {
		name string
		cfg  Config
	}{
		{"qemu", Config{}},
		{"learned", Config{Rules: trainStore}},
		{"para", Config{Rules: par, DelegateFlags: true}},
		{"para-noalloc", Config{Rules: par, DelegateFlags: true, NoBlockRegAlloc: true}},
		{"para-manual", Config{Rules: par, DelegateFlags: true, ManualABI: true}},
	}

	// Fresh programs: mutate profiles with unseen seeds and op mixes.
	base := workload.Profiles
	for trial := 0; trial < 8; trial++ {
		p := base[trial%len(base)]
		p.Seed = int64(9000 + trial*13)
		p.Name = "fuzz"
		p.Funcs = 3 + trial%3
		p.HotIters = 2 + trial%3
		p.InnerIter = 10 + trial*3
		prog := workload.Generate(p, 1)
		c, err := minic.Compile(prog)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := c.RunInterp(80_000_000)
		if err != nil {
			t.Fatalf("trial %d: interp: %v", trial, err)
		}
		for _, cc := range configs {
			got, _ := runProgram(t, c, cc.cfg)
			if want.R[guest.R0] != got.R[guest.R0] {
				t.Fatalf("trial %d cfg %s: r0 = %#x, want %#x",
					trial, cc.name, got.R[guest.R0], want.R[guest.R0])
			}
			if want.R[guest.SP] != got.R[guest.SP] {
				t.Fatalf("trial %d cfg %s: sp mismatch", trial, cc.name)
			}
			for i := 0; i < 128; i++ {
				addr := env.DataBase + uint32(i*4)
				if want.Mem.Read32(addr) != got.Mem.Read32(addr) {
					t.Fatalf("trial %d cfg %s: data[%#x] mismatch", trial, cc.name, addr)
				}
			}
		}
	}
}

// TestNoBlockRegAllocCorrect pins the state-resident ablation mode.
func TestNoBlockRegAllocCorrect(t *testing.T) {
	c := compileT(t, testProgram())
	want := interpret(t, c)
	_, par := learnRules(t, testProgram(), core.Config{Opcode: true, AddrMode: true})
	got, _ := runProgram(t, c, Config{Rules: par, DelegateFlags: true, NoBlockRegAlloc: true})
	sameResult(t, want, got, "no block regalloc")
}

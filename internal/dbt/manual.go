package dbt

import (
	"fmt"
	"math/bits"

	"paramdbt/internal/env"
	"paramdbt/internal/guest"
	"paramdbt/internal/host"
)

// Manual translations (paper §V-B2): the handful of instructions the
// learning process can never produce rules for — the ABI-tied stack
// operations and the specials without host counterparts — "can be added
// manually into the translation rules with very minimal engineering
// effort", closing the coverage gap. Enabled by Config.ManualABI, these
// emit hand-written host code (not TCG expansions) and count as
// rule-covered; with them the DBT approaches 100% dynamic coverage.

// manualEmittable reports whether a manual translation exists for the
// (non-terminator) instruction.
func manualEmittable(in guest.Inst) bool {
	if in.Cond != guest.AL || in.S {
		return false
	}
	switch in.Op {
	case guest.PUSH:
		return in.Ops[0].List&(1<<uint(guest.PC)) == 0
	case guest.POP:
		return in.Ops[0].List&(1<<uint(guest.PC)) == 0
	case guest.CLZ, guest.MLA, guest.UMLA:
		return true
	}
	return false
}

// emitManual translates one instruction with its hand-written recipe.
// Guest registers are accessed through the block mapping (or their
// CPUState slots), using the temp pool for staging.
func (e *Engine) emitManual(a *host.Asm, in guest.Inst, mapping map[guest.Reg]host.Reg) error {
	regmap := e.regmap(mapping)

	// loadTo stages a guest register into a specific host register.
	loadTo := func(dst host.Reg, r guest.Reg) {
		a.SetCat(host.CatDataTransfer)
		a.Emit(host.I(host.MOVL, host.R(dst), regmap(r)))
		a.SetCat(host.CatCompute)
	}
	// storeFrom writes a host register back to a guest register's home.
	storeFrom := func(r guest.Reg, src host.Reg) {
		a.SetCat(host.CatDataTransfer)
		a.Emit(host.I(host.MOVL, regmap(r), host.R(src)))
		a.SetCat(host.CatCompute)
	}

	switch in.Op {
	case guest.PUSH:
		// sp -= 4n; store each listed register ascending.
		list := in.Ops[0].List
		n := int32(bits.OnesCount16(list))
		loadTo(host.EAX, guest.SP)
		a.Emit(host.I(host.SUBL, host.R(host.EAX), host.Imm(4*n)))
		off := int32(0)
		for r := guest.Reg(0); r < guest.NumRegs; r++ {
			if list&(1<<uint(r)) == 0 {
				continue
			}
			if hr, ok := mapping[r]; ok {
				a.Emit(host.I(host.MOVL, host.Mem(host.EAX, off), host.R(hr)))
			} else {
				a.Emit(host.I(host.MOVL, host.R(host.ECX), host.Mem(host.EBP, env.OffReg(int(r)))))
				a.Emit(host.I(host.MOVL, host.Mem(host.EAX, off), host.R(host.ECX)))
			}
			off += 4
		}
		storeFrom(guest.SP, host.EAX)
		return nil

	case guest.POP:
		list := in.Ops[0].List
		loadTo(host.EAX, guest.SP)
		off := int32(0)
		for r := guest.Reg(0); r < guest.NumRegs; r++ {
			if list&(1<<uint(r)) == 0 {
				continue
			}
			if hr, ok := mapping[r]; ok {
				a.Emit(host.I(host.MOVL, host.R(hr), host.Mem(host.EAX, off)))
			} else {
				a.Emit(host.I(host.MOVL, host.R(host.ECX), host.Mem(host.EAX, off)))
				a.Emit(host.I(host.MOVL, host.Mem(host.EBP, env.OffReg(int(r))), host.R(host.ECX)))
			}
			off += 4
		}
		a.Emit(host.I(host.ADDL, host.R(host.EAX), host.Imm(off)))
		storeFrom(guest.SP, host.EAX)
		return nil

	case guest.CLZ:
		// dst = 32 when src == 0, else 31 - bsr(src).
		loadTo(host.ECX, in.Ops[1].Reg)
		skip := a.NewLabel()
		a.Emit(host.I(host.MOVL, host.R(host.EAX), host.Imm(32)))
		a.Emit(host.I(host.BSRL, host.R(host.ECX), host.R(host.ECX)))
		a.Emit(host.Jcc(host.E, skip))
		a.Emit(host.I(host.MOVL, host.R(host.EAX), host.Imm(31)))
		a.Emit(host.I(host.SUBL, host.R(host.EAX), host.R(host.ECX)))
		a.Bind(skip)
		storeFrom(in.Ops[0].Reg, host.EAX)
		return nil

	case guest.MLA, guest.UMLA:
		// rd = rn*rm + ra (UMLA masks the factors to 16 bits).
		loadTo(host.EAX, in.Ops[1].Reg)
		loadTo(host.ECX, in.Ops[2].Reg)
		if in.Op == guest.UMLA {
			a.Emit(host.I(host.ANDL, host.R(host.EAX), host.Imm(0xffff)))
			a.Emit(host.I(host.ANDL, host.R(host.ECX), host.Imm(0xffff)))
		}
		a.Emit(host.I(host.IMULL, host.R(host.EAX), host.R(host.ECX)))
		loadTo(host.ECX, in.Ops[3].Reg)
		a.Emit(host.I(host.ADDL, host.R(host.EAX), host.R(host.ECX)))
		storeFrom(in.Ops[0].Reg, host.EAX)
		return nil
	}
	return fmt.Errorf("dbt: no manual translation for %q", in)
}

// manualTerminatorCovered reports whether, under ManualABI, the
// terminator's translation counts as covered: b/bl/bx compile to pure
// control stubs that a manual rule table would emit identically.
func manualTerminatorCovered(term guest.Inst) bool {
	switch term.Op {
	case guest.B, guest.BL, guest.BX:
		return true
	}
	return false
}

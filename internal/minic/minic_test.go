package minic

import (
	"testing"

	"paramdbt/internal/env"
	"paramdbt/internal/guest"
	"paramdbt/internal/host"
)

// prog1 computes gauss sum 1..n via a loop, then stores the result.
func prog1() *Program {
	// main: v0 = result var (escapes), v1 = i, v2 = base
	main := &Func{
		Name:  "main",
		NVars: 4,
		Body: []*Stmt{
			Assign(0, C(0)),
			Assign(1, C(10)),
			While(Cond{Op: CmpNe, L: V(1), R: C(0)}, []*Stmt{
				Assign(0, B(OpAdd, V(0), V(1))),
				Assign(1, B(OpSub, V(1), C(1))),
			}),
			Assign(2, C(int32(env.DataBase))),
			Store(B(OpAdd, V(2), C(4)), V(0)),
			Return(V(0)),
		},
	}
	return &Program{Funcs: []*Func{main}}
}

func TestCompileAndInterpret(t *testing.T) {
	c, err := Compile(prog1())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.RunInterp(100000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[guest.R0] != 55 {
		t.Fatalf("result = %d, want 55", st.R[guest.R0])
	}
	if got := st.Mem.Read32(env.DataBase + 4); got != 55 {
		t.Fatalf("stored = %d, want 55", got)
	}
}

func TestCallsWork(t *testing.T) {
	// f(a,b) = a*2 + b; main: v0 = f(3,4) => 10
	f := &Func{
		Name:  "f",
		NArgs: 2,
		NVars: 3,
		Body: []*Stmt{
			Assign(2, B(OpMul, V(0), C(2))),
			Return(B(OpAdd, V(2), V(1))),
		},
	}
	main := &Func{
		Name:  "main",
		NVars: 1,
		Body: []*Stmt{
			Call(0, 1, C(3), C(4)),
			Return(V(0)),
		},
	}
	c, err := Compile(&Program{Funcs: []*Func{main, f}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.RunInterp(100000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[guest.R0] != 10 {
		t.Fatalf("f(3,4) = %d, want 10", st.R[guest.R0])
	}
}

func TestIfElse(t *testing.T) {
	main := &Func{
		Name:  "main",
		NVars: 2,
		Body: []*Stmt{
			Assign(1, C(7)),
			If(Cond{Op: CmpGt, L: V(1), R: C(5)},
				[]*Stmt{Assign(0, C(1))},
				[]*Stmt{Assign(0, C(2))}),
			Return(V(0)),
		},
	}
	c, err := Compile(&Program{Funcs: []*Func{main}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.RunInterp(10000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[guest.R0] != 1 {
		t.Fatalf("if result = %d", st.R[guest.R0])
	}
}

func TestSpilledVariables(t *testing.T) {
	// More variables than local registers forces stack slots on both
	// sides; the program must still compute correctly.
	body := []*Stmt{}
	for v := 0; v < 10; v++ {
		body = append(body, Assign(v, C(int32(v+1))))
	}
	sum := Assign(0, V(0))
	body = append(body, sum)
	for v := 1; v < 10; v++ {
		body = append(body, Assign(0, B(OpAdd, V(0), V(v))))
	}
	body = append(body, Return(V(0)))
	main := &Func{Name: "main", NVars: 10, Body: body}
	c, err := Compile(&Program{Funcs: []*Func{main}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.RunInterp(10000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[guest.R0] != 55 {
		t.Fatalf("spilled sum = %d, want 55", st.R[guest.R0])
	}
}

func TestOptimizerFoldsAndEliminates(t *testing.T) {
	main := &Func{
		Name:  "main",
		NVars: 4,
		Body: []*Stmt{
			Assign(1, B(OpAdd, C(2), C(3))), // folds to 5
			Assign(2, C(99)),                // dead: v2 never read
			Assign(0, B(OpMul, V(1), C(4))),
			Return(V(0)),
		},
	}
	p := &Program{Funcs: []*Func{main}}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Opt.Folded == 0 {
		t.Error("no constant folding recorded")
	}
	if c.Opt.Eliminated == 0 {
		t.Error("dead store not eliminated")
	}
	st, err := c.RunInterp(10000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[guest.R0] != 20 {
		t.Fatalf("result = %d, want 20", st.R[guest.R0])
	}
}

func TestOptimizerMergesStatements(t *testing.T) {
	// v3 = v1 ^ v2 ; v0 = v3 + 1 with v3 otherwise unused merges.
	main := &Func{
		Name:  "main",
		NVars: 4,
		Body: []*Stmt{
			Assign(1, C(6)),
			Assign(2, C(3)),
			Assign(3, B(OpXor, V(1), V(2))),
			Assign(0, B(OpAdd, V(3), C(1))),
			Return(V(0)),
		},
	}
	c, err := Compile(&Program{Funcs: []*Func{main}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Opt.Merged == 0 {
		t.Error("no statement merging")
	}
	if len(c.Gone) == 0 {
		t.Error("merged statement not marked gone")
	}
	st, err := c.RunInterp(10000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[guest.R0] != 6 { // (6^3)+1 = 5+1
		t.Fatalf("result = %d, want 6", st.R[guest.R0])
	}
}

func TestFlagFusionEmitsSBit(t *testing.T) {
	c, err := Compile(prog1())
	if err != nil {
		t.Fatal(err)
	}
	foundS := false
	for _, in := range c.GuestInsts {
		if in.S && in.Op == guest.SUB {
			foundS = true
		}
	}
	if !foundS {
		t.Fatal("loop decrement not fused into subs")
	}
	// The host side must have elided the matching compare via Jcc after
	// the subl.
	hf := c.Funcs[0].H
	fusedJcc := false
	for i := 1; i < len(hf.Insts); i++ {
		if hf.Insts[i].Op == host.JCC && hf.Insts[i-1].Op == host.SUBL {
			fusedJcc = true
		}
	}
	if !fusedJcc {
		t.Fatal("host compare not elided after subl")
	}
}

func TestLineTablePairsExist(t *testing.T) {
	c, err := Compile(prog1())
	if err != nil {
		t.Fatal(err)
	}
	cf := c.Funcs[0]
	if len(cf.Pairs) == 0 {
		t.Fatal("empty line table")
	}
	for _, p := range cf.Pairs {
		if p.G.End <= p.G.Start || p.G.End > len(cf.G.Insts) {
			t.Fatalf("bad guest interval %+v", p)
		}
		if p.H.End <= p.H.Start || p.H.End > len(cf.H.Insts) {
			t.Fatalf("bad host interval %+v", p)
		}
	}
}

func TestVarLocations(t *testing.T) {
	c, err := Compile(prog1())
	if err != nil {
		t.Fatal(err)
	}
	g := c.Funcs[0].G.Locs
	h := c.Funcs[0].H.Locs
	if !g[0].InReg || g[0].Reg != guest.R4 {
		t.Fatalf("guest v0 loc = %+v", g[0])
	}
	if !h[0].InReg || h[0].Reg != host.EBX {
		t.Fatalf("host v0 loc = %+v", h[0])
	}
	// v3 still fits the host's 4 register homes (ebp included); only v4+
	// spill there, while the guest keeps 6 register homes.
	if !g[3].InReg || !h[3].InReg {
		t.Fatalf("v3 locations: guest %+v host %+v", g[3], h[3])
	}
}

func TestLargeConstantMaterialization(t *testing.T) {
	main := &Func{
		Name:  "main",
		NVars: 1,
		Body: []*Stmt{
			Assign(0, C(0x12345678)),
			Return(V(0)),
		},
	}
	c, err := Compile(&Program{Funcs: []*Func{main}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.RunInterp(10000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[guest.R0] != 0x12345678 {
		t.Fatalf("const = %#x", st.R[guest.R0])
	}
	// Negative constants use mvn.
	main2 := &Func{
		Name:  "main",
		NVars: 1,
		Body:  []*Stmt{Assign(0, C(-5)), Return(V(0))},
	}
	c2, err := Compile(&Program{Funcs: []*Func{main2}})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c2.RunInterp(10000)
	if err != nil {
		t.Fatal(err)
	}
	if int32(st2.R[guest.R0]) != -5 {
		t.Fatalf("neg const = %d", int32(st2.R[guest.R0]))
	}
}

func TestAllBinOpsCompileAndRun(t *testing.T) {
	// Each operator applied to fixed values; compare interpreter result
	// with the language's reference semantics.
	for op := BinOp(0); op < BinOp(NumBinOps); op++ {
		l, r := int32(23), int32(3)
		main := &Func{
			Name:  "main",
			NVars: 3,
			Body: []*Stmt{
				Assign(1, C(l)),
				Assign(2, C(r)),
				Assign(0, B(op, V(1), V(2))),
				Return(V(0)),
			},
		}
		c, err := Compile(&Program{Funcs: []*Func{main}})
		if err != nil {
			t.Fatalf("op %v: %v", op, err)
		}
		st, err := c.RunInterp(10000)
		if err != nil {
			t.Fatalf("op %v: %v", op, err)
		}
		want := uint32(evalBin(op, l, r))
		if st.R[guest.R0] != want {
			t.Fatalf("op %v: got %#x, want %#x", op, st.R[guest.R0], want)
		}
	}
}

func TestUnaryOpsCompileAndRun(t *testing.T) {
	cases := []struct {
		op   UnOp
		in   int32
		want uint32
	}{
		{OpNot, 5, ^uint32(5)},
		{OpNeg, 5, uint32(0xfffffffb)},
		{OpClz, 0x00010000, 15},
	}
	for _, cse := range cases {
		main := &Func{
			Name:  "main",
			NVars: 2,
			Body: []*Stmt{
				Assign(1, C(cse.in)),
				Assign(0, U(cse.op, V(1))),
				Return(V(0)),
			},
		}
		c, err := Compile(&Program{Funcs: []*Func{main}})
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.RunInterp(10000)
		if err != nil {
			t.Fatal(err)
		}
		if st.R[guest.R0] != cse.want {
			t.Fatalf("unop %v: got %#x, want %#x", cse.op, st.R[guest.R0], cse.want)
		}
	}
}

func TestByteLoadStore(t *testing.T) {
	main := &Func{
		Name:  "main",
		NVars: 3,
		Body: []*Stmt{
			Assign(1, C(int32(env.DataBase))),
			Assign(2, C(0x1ff)),
			StoreB(B(OpAdd, V(1), C(2)), V(2)),
			Assign(0, LoadB(B(OpAdd, V(1), C(2)))),
			Return(V(0)),
		},
	}
	c, err := Compile(&Program{Funcs: []*Func{main}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.RunInterp(10000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[guest.R0] != 0xff {
		t.Fatalf("byte round trip = %#x", st.R[guest.R0])
	}
}

package minic

import (
	"fmt"

	"paramdbt/internal/guest"
)

// Guest calling convention: arguments arrive in r0..r3 and are relocated
// to allocated homes in the prologue; locals live in r4..r9 and then in
// stack slots; r10..r12 are expression temporaries; return value in r0.
// Callee saves the r4..r9 registers it uses plus lr with push/pop — the
// ABI-tied instructions that, exactly as in the paper, never become
// translation rules.

// GLoc is a guest variable location.
type GLoc struct {
	InReg bool
	Reg   guest.Reg
	Slot  int // stack slot index when !InReg
}

// GenEntry attributes an instruction interval to a statement occurrence.
type GenEntry struct {
	Stmt  int
	Start int
	End   int // exclusive
}

// GuestFunc is the output of the guest code generator for one function.
type GuestFunc struct {
	Insts   []guest.Inst
	Entries []GenEntry
	Locs    map[int]GLoc
	// CallSites maps instruction index -> callee function index; the
	// linker resolves them.
	CallSites map[int]int
}

var guestTempPool = []guest.Reg{guest.R10, guest.R11, guest.R12}
var guestLocalRegs = []guest.Reg{guest.R4, guest.R5, guest.R6, guest.R7, guest.R8, guest.R9}

type gg struct {
	f     *Func
	out   []guest.Inst
	locs  map[int]GLoc
	temps map[guest.Reg]bool
	calls map[int]int

	entries []GenEntry

	labels    map[int]int // label id -> instruction index
	nextLabel int
	fixups    []int // instruction indices holding label ids in Imm

	// lastALU supports compare-with-zero fusion: the index of the last
	// emitted data-processing instruction whose destination is a
	// variable's home register, valid only when it is the most recent
	// instruction.
	lastALUVar  int
	lastALUInst int

	frameSlots int
	err        error
}

func (g *gg) fail(format string, args ...interface{}) {
	if g.err == nil {
		g.err = fmt.Errorf("minic/guest: "+format, args...)
	}
}

func (g *gg) emit(in guest.Inst) int {
	g.out = append(g.out, in)
	return len(g.out) - 1
}

func (g *gg) newLabel() int { g.nextLabel++; return g.nextLabel }
func (g *gg) bind(l int)    { g.labels[l] = len(g.out); g.lastALUVar = -1 }

// branch emits a branch to a label; the offset is fixed up later.
func (g *gg) branch(cond guest.Cond, label int) {
	idx := g.emit(guest.NewInst(guest.B, guest.ImmOp(int32(label))).WithCond(cond))
	g.fixups = append(g.fixups, idx)
	g.lastALUVar = -1
}

func (g *gg) allocTemp() guest.Reg {
	for _, r := range guestTempPool {
		if !g.temps[r] {
			g.temps[r] = true
			return r
		}
	}
	g.fail("out of expression temporaries (expression too deep)")
	return guest.R10
}

func (g *gg) release(r guest.Reg) {
	for _, t := range guestTempPool {
		if t == r {
			delete(g.temps, r)
		}
	}
}

func (g *gg) releaseOp(o guest.Operand) {
	if o.Kind == guest.KindReg {
		g.release(o.Reg)
	}
	if o.Kind == guest.KindMem {
		g.release(o.Base)
		if o.HasIdx {
			g.release(o.Idx)
		}
	}
}

// slotMem returns the stack-slot operand for a spilled variable.
func (g *gg) slotMem(slot int) guest.Operand {
	return guest.MemOp(guest.SP, int32(4*slot))
}

// buildConst materializes an arbitrary 32-bit constant into dst.
func (g *gg) buildConst(dst guest.Reg, v int32) {
	u := uint32(v)
	switch {
	case u <= 255:
		g.emit(guest.NewInst(guest.MOV, guest.RegOp(dst), guest.ImmOp(v)))
	case ^u <= 255:
		g.emit(guest.NewInst(guest.MVN, guest.RegOp(dst), guest.ImmOp(int32(^u))))
	default:
		// Byte-by-byte construction (movw/movt stand-in).
		g.emit(guest.NewInst(guest.MOV, guest.RegOp(dst), guest.ImmOp(int32(u>>24))))
		for sh := 16; sh >= 0; sh -= 8 {
			g.emit(guest.NewInst(guest.LSL, guest.RegOp(dst), guest.RegOp(dst), guest.ImmOp(8)))
			if b := int32(u >> uint(sh) & 0xff); b != 0 {
				g.emit(guest.NewInst(guest.ORR, guest.RegOp(dst), guest.RegOp(dst), guest.ImmOp(b)))
			}
		}
	}
}

// genReg evaluates e into a register (a variable's home register or a
// temp the caller must release).
func (g *gg) genReg(e *Expr) guest.Reg {
	switch e.Kind {
	case EVar:
		loc := g.locs[e.Var]
		if loc.InReg {
			return loc.Reg
		}
		t := g.allocTemp()
		g.emit(guest.NewInst(guest.LDR, guest.RegOp(t), g.slotMem(loc.Slot)))
		return t
	case EConst:
		t := g.allocTemp()
		g.buildConst(t, e.Val)
		return t
	default:
		o := g.genValue(e, guest.Reg(0xff))
		return o
	}
}

// genOperand evaluates e into an operand usable as the second source of
// a data-processing instruction (register or encodable immediate).
func (g *gg) genOperand(e *Expr) guest.Operand {
	if e.Kind == EConst && e.Val >= 0 && e.Val <= 255 {
		return guest.ImmOp(e.Val)
	}
	return guest.RegOp(g.genReg(e))
}

var guestBinOp = map[BinOp]guest.Op{
	OpAdd: guest.ADD, OpSub: guest.SUB, OpRsb: guest.RSB, OpMul: guest.MUL,
	OpAnd: guest.AND, OpOr: guest.ORR, OpXor: guest.EOR, OpBic: guest.BIC,
	OpShl: guest.LSL, OpShr: guest.LSR, OpSar: guest.ASR, OpRor: guest.ROR,
}

// genValue evaluates a non-leaf expression into dst (or a fresh temp
// when dst == 0xff) and returns the result register.
func (g *gg) genValue(e *Expr, dst guest.Reg) guest.Reg {
	target := func() guest.Reg {
		if dst != 0xff {
			return dst
		}
		return g.allocTemp()
	}
	switch e.Kind {
	case EConst:
		d := target()
		g.buildConst(d, e.Val)
		return d
	case EVar:
		src := g.genReg(e)
		if dst == 0xff {
			return src
		}
		if src != dst {
			g.emit(guest.NewInst(guest.MOV, guest.RegOp(dst), guest.RegOp(src)))
			g.release(src)
		}
		return dst
	case EBin:
		op, ok := guestBinOp[e.Op]
		if !ok {
			g.fail("no guest op for %v", e.Op)
			return 0
		}
		// MUL cannot take an immediate operand in the ISA.
		var b guest.Operand
		a := g.genReg(e.L)
		if op == guest.MUL {
			b = guest.RegOp(g.genReg(e.R))
		} else {
			b = g.genOperand(e.R)
		}
		d := target()
		idx := g.emit(guest.NewInst(op, guest.RegOp(d), guest.RegOp(a), b))
		if a != d {
			g.release(a)
		}
		if b.Kind == guest.KindReg && b.Reg != d {
			g.release(b.Reg)
		}
		g.noteALU(d, idx)
		return d
	case EUn:
		d := target()
		switch e.UOp {
		case OpNot:
			x := g.genOperand(e.L)
			g.emit(guest.NewInst(guest.MVN, guest.RegOp(d), x))
			g.releaseOp(x)
		case OpNeg:
			x := g.genReg(e.L)
			g.emit(guest.NewInst(guest.RSB, guest.RegOp(d), guest.RegOp(x), guest.ImmOp(0)))
			if x != d {
				g.release(x)
			}
		case OpClz:
			x := g.genReg(e.L)
			g.emit(guest.NewInst(guest.CLZ, guest.RegOp(d), guest.RegOp(x)))
			if x != d {
				g.release(x)
			}
		}
		return d
	case ELoad:
		m := g.genAddr(e.L)
		d := target()
		op := guest.LDR
		if e.Byte {
			op = guest.LDRB
		}
		g.emit(guest.NewInst(op, guest.RegOp(d), m))
		g.releaseOp(m)
		return d
	}
	g.fail("bad expression")
	return 0
}

// genAddr lowers an address expression into a memory operand, folding
// base+small-const into a displacement and base+reg into an indexed
// form.
func (g *gg) genAddr(e *Expr) guest.Operand {
	if e.Kind == EBin && e.Op == OpAdd {
		if e.R.Kind == EConst && e.R.Val >= 0 && e.R.Val <= 255 {
			return guest.MemOp(g.genReg(e.L), e.R.Val)
		}
		base := g.genReg(e.L)
		idx := g.genReg(e.R)
		return guest.MemIdxOp(base, idx)
	}
	return guest.MemOp(g.genReg(e), 0)
}

func (g *gg) noteALU(dst guest.Reg, inst int) {
	for v, loc := range g.locs {
		if loc.InReg && loc.Reg == dst {
			g.lastALUVar = v
			g.lastALUInst = inst
			return
		}
	}
	g.lastALUVar = -1
}

var guestCmpCond = map[CmpOp]guest.Cond{
	CmpEq: guest.EQ, CmpNe: guest.NE, CmpLt: guest.LT, CmpGe: guest.GE,
	CmpGt: guest.GT, CmpLe: guest.LE, CmpLoU: guest.CC, CmpHsU: guest.CS,
}

// fusableCmp reports whether a condition can reuse the flags of the
// preceding flag-settable ALU instruction (comparison against zero with
// an N/Z-only condition).
func fusableCmp(c Cond, lastVar int) bool {
	if lastVar < 0 || c.L.Kind != EVar || c.L.Var != lastVar {
		return false
	}
	if c.R.Kind != EConst || c.R.Val != 0 {
		return false
	}
	switch c.Op {
	case CmpEq, CmpNe, CmpLt, CmpGe:
		return true
	}
	return false
}

// fusedCond maps a zero-comparison to the condition code testing the
// flags an S-suffixed ALU leaves: the sign and zero of the result itself
// (MI/PL rather than LT/GE, since the ALU's V reflects the operation,
// not the comparison).
var fusedCond = map[CmpOp]guest.Cond{
	CmpEq: guest.EQ, CmpNe: guest.NE, CmpLt: guest.MI, CmpGe: guest.PL,
}

// condBranch evaluates the condition and branches to label when the
// condition's truth equals whenTrue.
func (g *gg) condBranch(c Cond, label int, whenTrue bool) {
	if fusableCmp(c, g.lastALUVar) && g.lastALUInst == len(g.out)-1 {
		// Set the S bit on the producing instruction; skip the compare.
		g.out[g.lastALUInst].S = true
		cond := fusedCond[c.Op]
		if !whenTrue {
			cond = cond.Invert()
		}
		g.branch(cond, label)
		return
	}
	{
		l := g.genReg(c.L)
		r := g.genOperand(c.R)
		g.emit(guest.NewInst(guest.CMP, guest.RegOp(l), r))
		g.release(l)
		g.releaseOp(r)
	}
	cond := guestCmpCond[c.Op]
	if !whenTrue {
		cond = cond.Invert()
	}
	g.branch(cond, label)
}

func (g *gg) stmt(s *Stmt) {
	start := len(g.out)
	switch s.Kind {
	case SAssign:
		loc := g.locs[s.Dst]
		if loc.InReg {
			res := g.genValue(s.E, loc.Reg)
			if res != loc.Reg {
				g.emit(guest.NewInst(guest.MOV, guest.RegOp(loc.Reg), guest.RegOp(res)))
				g.release(res)
			}
		} else {
			r := g.genReg(s.E)
			g.emit(guest.NewInst(guest.STR, guest.RegOp(r), g.slotMem(loc.Slot)))
			g.release(r)
		}
		g.record(s, start)

	case SStore:
		m := g.genAddr(s.Addr)
		v := g.genReg(s.E)
		op := guest.STR
		if s.Byte {
			op = guest.STRB
		}
		g.emit(guest.NewInst(op, guest.RegOp(v), m))
		g.release(v)
		g.releaseOp(m)
		g.record(s, start)

	case SIf:
		elseL := g.newLabel()
		endL := g.newLabel()
		g.condBranch(s.Cond, elseL, false)
		g.record(s, start)
		for _, n := range s.Then {
			g.stmt(n)
		}
		if len(s.Else) > 0 {
			g.branch(guest.AL, endL)
			g.bind(elseL)
			for _, n := range s.Else {
				g.stmt(n)
			}
			g.bind(endL)
		} else {
			g.bind(elseL)
		}

	case SWhile:
		// Rotated loop (-O2 loop inversion): guard, body, bottom test.
		endL := g.newLabel()
		headL := g.newLabel()
		g.condBranch(s.Cond, endL, false)
		g.record(s, start)
		g.bind(headL)
		for _, n := range s.Body {
			g.stmt(n)
		}
		bottom := len(g.out)
		g.condBranch(s.Cond, headL, true)
		g.entries = append(g.entries, GenEntry{Stmt: s.ID, Start: bottom, End: len(g.out)})
		g.bind(endL)

	case SCall:
		// Marshal into r0..r3, call, collect result.
		if len(s.Args) > 4 {
			g.fail("too many call arguments")
			return
		}
		for i, a := range s.Args {
			r := g.genValue(a, guest.Reg(i))
			if r != guest.Reg(i) {
				g.emit(guest.NewInst(guest.MOV, guest.RegOp(guest.Reg(i)), guest.RegOp(r)))
				g.release(r)
			}
		}
		idx := g.emit(guest.NewInst(guest.BL, guest.ImmOp(0)))
		g.calls[idx] = s.Callee
		g.lastALUVar = -1
		if s.Dst >= 0 {
			loc := g.locs[s.Dst]
			if loc.InReg {
				g.emit(guest.NewInst(guest.MOV, guest.RegOp(loc.Reg), guest.RegOp(guest.R0)))
			} else {
				g.emit(guest.NewInst(guest.STR, guest.RegOp(guest.R0), g.slotMem(loc.Slot)))
			}
		}
		g.record(s, start)

	case SReturn:
		if s.E != nil {
			r := g.genValue(s.E, guest.R0)
			if r != guest.R0 {
				g.emit(guest.NewInst(guest.MOV, guest.RegOp(guest.R0), guest.RegOp(r)))
				g.release(r)
			}
		}
		g.branch(guest.AL, 0) // label 0 = epilogue
		g.record(s, start)
	}
}

func (g *gg) record(s *Stmt, start int) {
	if len(g.out) > start {
		g.entries = append(g.entries, GenEntry{Stmt: s.ID, Start: start, End: len(g.out)})
	}
}

// GenGuest compiles one function to guest code.
func GenGuest(f *Func) (*GuestFunc, error) {
	g := &gg{
		f:          f,
		locs:       map[int]GLoc{},
		temps:      map[guest.Reg]bool{},
		calls:      map[int]int{},
		labels:     map[int]int{},
		lastALUVar: -1,
	}
	// Allocate variables: first to the local registers, then to slots.
	for v := 0; v < f.NVars; v++ {
		if v < len(guestLocalRegs) {
			g.locs[v] = GLoc{InReg: true, Reg: guestLocalRegs[v]}
		} else {
			g.locs[v] = GLoc{Slot: g.frameSlots}
			g.frameSlots++
		}
	}

	// Prologue: save callee-saved registers and lr, carve the frame,
	// relocate incoming arguments.
	var saved uint16
	for v := 0; v < f.NVars && v < len(guestLocalRegs); v++ {
		saved |= 1 << uint(guestLocalRegs[v])
	}
	saved |= 1 << uint(guest.LR)
	g.emit(guest.NewInst(guest.PUSH, guest.Operand{Kind: guest.KindRegList, List: saved}))
	if g.frameSlots > 0 {
		g.emit(guest.NewInst(guest.SUB, guest.RegOp(guest.SP), guest.RegOp(guest.SP), guest.ImmOp(int32(4*g.frameSlots))))
	}
	for a := 0; a < f.NArgs; a++ {
		loc := g.locs[a]
		if loc.InReg {
			g.emit(guest.NewInst(guest.MOV, guest.RegOp(loc.Reg), guest.RegOp(guest.Reg(a))))
		} else {
			g.emit(guest.NewInst(guest.STR, guest.RegOp(guest.Reg(a)), g.slotMem(loc.Slot)))
		}
	}

	for _, s := range f.Body {
		g.stmt(s)
	}

	// Epilogue (label 0).
	g.labels[0] = len(g.out)
	if g.frameSlots > 0 {
		g.emit(guest.NewInst(guest.ADD, guest.RegOp(guest.SP), guest.RegOp(guest.SP), guest.ImmOp(int32(4*g.frameSlots))))
	}
	g.emit(guest.NewInst(guest.POP, guest.Operand{Kind: guest.KindRegList, List: saved}))
	g.emit(guest.NewInst(guest.BX, guest.RegOp(guest.LR)))

	if g.err != nil {
		return nil, g.err
	}

	// Resolve local branch labels.
	for _, idx := range g.fixups {
		label := int(g.out[idx].Ops[0].Imm)
		target, ok := g.labels[label]
		if !ok {
			return nil, fmt.Errorf("minic/guest: unresolved label %d", label)
		}
		g.out[idx].Ops[0].Imm = int32(target - (idx + 1))
	}

	return &GuestFunc{Insts: g.out, Entries: g.entries, Locs: g.locs, CallSites: g.calls}, nil
}

package minic

// The optimizer runs at the AST level before code generation, the way a
// compiler's middle end runs before instruction selection. Besides
// improving the code it degrades the statement-to-instruction mapping:
// eliminated statements generate no instructions, and merged statements
// attribute two source statements to one instruction range. Both effects
// reduce the learning pipeline's candidate yield, reproducing the paper's
// observation that only ~54% of statements produce rule candidates.

// OptStats reports what the optimizer did, for the learning statistics.
type OptStats struct {
	Folded     int // constant-folded expressions
	Eliminated int // dead statements removed
	Merged     int // statement pairs merged
}

// Optimize runs constant folding, forward substitution (statement
// merging) and dead-store elimination over every function. Statements
// that vanish are recorded in the returned map (stmt ID -> true) so the
// line table can mark them.
func Optimize(p *Program) (OptStats, map[int]bool) {
	var st OptStats
	gone := map[int]bool{}
	for _, f := range p.Funcs {
		f.Body = optBlock(f, f.Body, &st, gone, true)
	}
	return st, gone
}

// readsInFunc counts every read of variable v in the function.
func readsInFunc(f *Func, v int) int {
	n := 0
	var walk func(ss []*Stmt)
	walk = func(ss []*Stmt) {
		for _, s := range ss {
			n += countVarReads(s.E, v) + countVarReads(s.Addr, v)
			if s.Kind == SIf || s.Kind == SWhile {
				n += countVarReads(s.Cond.L, v) + countVarReads(s.Cond.R, v)
			}
			for _, a := range s.Args {
				n += countVarReads(a, v)
			}
			walk(s.Then)
			walk(s.Else)
			walk(s.Body)
		}
	}
	walk(f.Body)
	return n
}

// optBlock optimizes one statement list. topLevel is true only for the
// function body itself: dead-store elimination is unsound inside loop
// and branch bodies (the surrounding control flow re-reads variables),
// so it only runs at the top level over a straight-line tail.
func optBlock(f *Func, ss []*Stmt, st *OptStats, gone map[int]bool, topLevel bool) []*Stmt {
	// Fold expressions everywhere first.
	for _, s := range ss {
		foldStmt(s, st)
	}

	// Forward substitution: v = e; w = f(v) merges into w = f(e) when
	// the next-statement read is v's only read in the whole function
	// (so loop back-edges cannot observe the missing assignment) and e
	// has no loads (loads may not move past stores).
	out := make([]*Stmt, 0, len(ss))
	for i := 0; i < len(ss); i++ {
		s := ss[i]
		if s.Kind == SAssign && i+1 < len(ss) && ss[i+1].Kind == SAssign &&
			s.Dst != ss[i+1].Dst &&
			!hasLoad(s.E) && exprSize(s.E) <= 3 &&
			countVarReads(ss[i+1].E, s.Dst) == 1 &&
			readsInFunc(f, s.Dst) == 1 &&
			!escapes(f, s.Dst) {
			next := ss[i+1]
			next.E = substVar(next.E, s.Dst, s.E)
			foldStmt(next, st)
			gone[s.ID] = true
			st.Merged++
			continue // drop s; next processed in following iteration
		}
		// Recurse into nested blocks.
		s.Then = optBlock(f, s.Then, st, gone, false)
		s.Else = optBlock(f, s.Else, st, gone, false)
		s.Body = optBlock(f, s.Body, st, gone, false)
		out = append(out, s)
	}

	if !topLevel {
		return out
	}

	// Dead-store elimination over the straight-line tail of the
	// function: an assignment to a non-escaping variable that is never
	// read afterwards dies.
	res := make([]*Stmt, 0, len(out))
	for i, s := range out {
		if s.Kind == SAssign && !hasLoad(s.E) &&
			!readLater(out[i+1:], s.Dst, 0) && !escapes(f, s.Dst) &&
			isStraightLine(out[i+1:]) {
			gone[s.ID] = true
			st.Eliminated++
			continue
		}
		res = append(res, s)
	}
	return res
}

// escapes reports whether the variable may be observed after the block
// (arguments and v0 — the conventional return-value variable — escape).
func escapes(f *Func, v int) bool { return v < f.NArgs || v == 0 }

func isStraightLine(ss []*Stmt) bool {
	for _, s := range ss {
		switch s.Kind {
		case SIf, SWhile, SCall:
			return false
		}
	}
	return true
}

func foldStmt(s *Stmt, st *OptStats) {
	if s.E != nil {
		s.E = foldExpr(s.E, st)
	}
	if s.Addr != nil {
		s.Addr = foldExpr(s.Addr, st)
	}
	if s.Kind == SIf || s.Kind == SWhile {
		s.Cond.L = foldExpr(s.Cond.L, st)
		s.Cond.R = foldExpr(s.Cond.R, st)
	}
	for i, a := range s.Args {
		s.Args[i] = foldExpr(a, st)
	}
}

func foldExpr(e *Expr, st *OptStats) *Expr {
	if e == nil {
		return nil
	}
	switch e.Kind {
	case EConst, EVar:
		return e
	case EBin:
		e.L = foldExpr(e.L, st)
		e.R = foldExpr(e.R, st)
		if e.L.Kind == EConst && e.R.Kind == EConst {
			st.Folded++
			return C(evalBin(e.Op, e.L.Val, e.R.Val))
		}
		// x+0, x|0, x^0, x<<0 ...
		if e.R.Kind == EConst && e.R.Val == 0 {
			switch e.Op {
			case OpAdd, OpSub, OpOr, OpXor, OpShl, OpShr, OpSar, OpBic, OpRor:
				st.Folded++
				return e.L
			}
		}
		if e.R.Kind == EConst && e.R.Val == 1 && e.Op == OpMul {
			st.Folded++
			return e.L
		}
		return e
	case EUn:
		e.L = foldExpr(e.L, st)
		if e.L.Kind == EConst {
			st.Folded++
			switch e.UOp {
			case OpNot:
				return C(^e.L.Val)
			case OpNeg:
				return C(-e.L.Val)
			}
		}
		return e
	case ELoad:
		e.L = foldExpr(e.L, st)
		return e
	}
	return e
}

// evalBin is the language's reference semantics for binary operators.
func evalBin(op BinOp, l, r int32) int32 {
	a, b := uint32(l), uint32(r)
	switch op {
	case OpAdd:
		return int32(a + b)
	case OpSub:
		return int32(a - b)
	case OpRsb:
		return int32(b - a)
	case OpMul:
		return int32(a * b)
	case OpAnd:
		return int32(a & b)
	case OpOr:
		return int32(a | b)
	case OpXor:
		return int32(a ^ b)
	case OpBic:
		return int32(a &^ b)
	case OpShl:
		return int32(a << (b & 31))
	case OpShr:
		return int32(a >> (b & 31))
	case OpSar:
		return l >> (b & 31)
	case OpRor:
		return int32(a>>(b&31) | a<<((32-b)&31))
	}
	return 0
}

func hasLoad(e *Expr) bool {
	if e == nil {
		return false
	}
	if e.Kind == ELoad {
		return true
	}
	return hasLoad(e.L) || hasLoad(e.R)
}

func exprSize(e *Expr) int {
	if e == nil {
		return 0
	}
	return 1 + exprSize(e.L) + exprSize(e.R)
}

func countVarReads(e *Expr, v int) int {
	if e == nil {
		return 0
	}
	n := 0
	if e.Kind == EVar && e.Var == v {
		n++
	}
	return n + countVarReads(e.L, v) + countVarReads(e.R, v)
}

// readLater reports whether variable v is read in statements ss[skip:],
// including nested blocks and conditions.
func readLater(ss []*Stmt, v, skip int) bool {
	for i := skip; i < len(ss); i++ {
		s := ss[i]
		if stmtReads(s, v) {
			return true
		}
	}
	return false
}

func stmtReads(s *Stmt, v int) bool {
	if countVarReads(s.E, v) > 0 || countVarReads(s.Addr, v) > 0 {
		return true
	}
	if s.Kind == SIf || s.Kind == SWhile {
		if countVarReads(s.Cond.L, v) > 0 || countVarReads(s.Cond.R, v) > 0 {
			return true
		}
	}
	for _, a := range s.Args {
		if countVarReads(a, v) > 0 {
			return true
		}
	}
	for _, blk := range [][]*Stmt{s.Then, s.Else, s.Body} {
		for _, n := range blk {
			if stmtReads(n, v) {
				return true
			}
		}
	}
	return false
}

func substVar(e *Expr, v int, repl *Expr) *Expr {
	if e == nil {
		return nil
	}
	if e.Kind == EVar && e.Var == v {
		return repl
	}
	c := *e
	c.L = substVar(e.L, v, repl)
	c.R = substVar(e.R, v, repl)
	return &c
}

// Package minic implements the mini imperative language and the dual
// compiler that stands in for gcc/LLVM in the learning pipeline: the
// same program is compiled to the guest ISA (where it actually runs
// under the DBT) and to the host ISA (used only as learning material),
// with a per-statement line table whose accuracy degrades under
// optimization — the mechanism behind the paper's candidate-yield
// funnel (Table I).
package minic

import "fmt"

// BinOp is a binary operator of the language. The operator palette
// deliberately spans the guest ISA's data-processing opcodes so workload
// profiles can tune instruction mixes.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpRsb // reverse subtract (r - l)
	OpMul
	OpAnd
	OpOr
	OpXor
	OpBic // l &^ r
	OpShl
	OpShr
	OpSar
	OpRor
	numBinOps
)

// NumBinOps is the number of binary operators.
const NumBinOps = int(numBinOps)

// String names the operator.
func (o BinOp) String() string {
	return [...]string{"+", "-", "rsb", "*", "&", "|", "^", "&^", "<<", ">>u", ">>s", "ror"}[o]
}

// UnOp is a unary operator.
type UnOp uint8

// Unary operators.
const (
	OpNot UnOp = iota // bitwise complement
	OpNeg
	OpClz // count leading zeros intrinsic
)

// CmpOp is a comparison operator for conditions.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt  // signed
	CmpGe  // signed
	CmpGt  // signed
	CmpLe  // signed
	CmpLoU // unsigned <
	CmpHsU // unsigned >=
)

// ExprKind tags expressions.
type ExprKind uint8

// Expression kinds.
const (
	EConst ExprKind = iota
	EVar
	EBin
	EUn
	ELoad // mem[addr]
)

// Expr is an expression tree node.
type Expr struct {
	Kind ExprKind
	Val  int32 // EConst
	Var  int   // EVar
	Op   BinOp // EBin
	UOp  UnOp  // EUn
	L, R *Expr
	Byte bool // ELoad: byte-sized load
}

// C returns a constant expression.
func C(v int32) *Expr { return &Expr{Kind: EConst, Val: v} }

// V returns a variable reference.
func V(i int) *Expr { return &Expr{Kind: EVar, Var: i} }

// B returns a binary expression.
func B(op BinOp, l, r *Expr) *Expr { return &Expr{Kind: EBin, Op: op, L: l, R: r} }

// U returns a unary expression.
func U(op UnOp, x *Expr) *Expr { return &Expr{Kind: EUn, UOp: op, L: x} }

// LoadE returns a 32-bit memory load at the address expression.
func LoadE(addr *Expr) *Expr { return &Expr{Kind: ELoad, L: addr} }

// LoadB returns a byte memory load.
func LoadB(addr *Expr) *Expr { return &Expr{Kind: ELoad, L: addr, Byte: true} }

// Cond is a branch condition.
type Cond struct {
	Op   CmpOp
	L, R *Expr
}

// StmtKind tags statements.
type StmtKind uint8

// Statement kinds.
const (
	SAssign StmtKind = iota
	SStore           // mem[addr] = value
	SIf
	SWhile
	SCall   // dst = f(args...) (dst < 0 discards)
	SReturn // return value
)

// Stmt is one source statement. ID is the global statement number used
// by the line table; it is assigned by Number.
type Stmt struct {
	ID   int
	Kind StmtKind

	Dst  int   // SAssign, SCall destination variable (SCall: -1 = none)
	E    *Expr // SAssign value, SStore value, SReturn value
	Addr *Expr // SStore address
	Byte bool  // SStore: byte-sized store

	Cond       Cond // SIf, SWhile
	Then, Else []*Stmt
	Body       []*Stmt

	Callee int     // SCall: function index
	Args   []*Expr // SCall
}

// Assign builds dst = e.
func Assign(dst int, e *Expr) *Stmt { return &Stmt{Kind: SAssign, Dst: dst, E: e} }

// Store builds mem[addr] = e.
func Store(addr, e *Expr) *Stmt { return &Stmt{Kind: SStore, Addr: addr, E: e} }

// StoreB builds a byte store.
func StoreB(addr, e *Expr) *Stmt { return &Stmt{Kind: SStore, Addr: addr, E: e, Byte: true} }

// If builds a two-armed conditional.
func If(c Cond, then, els []*Stmt) *Stmt { return &Stmt{Kind: SIf, Cond: c, Then: then, Else: els} }

// While builds a loop.
func While(c Cond, body []*Stmt) *Stmt { return &Stmt{Kind: SWhile, Cond: c, Body: body} }

// Call builds dst = funcs[callee](args...).
func Call(dst, callee int, args ...*Expr) *Stmt {
	return &Stmt{Kind: SCall, Dst: dst, Callee: callee, Args: args}
}

// Return builds return e (e may be nil).
func Return(e *Expr) *Stmt { return &Stmt{Kind: SReturn, E: e} }

// Func is one function: NArgs arguments (variables 0..NArgs-1) and
// NVars total variables.
type Func struct {
	Name  string
	NArgs int
	NVars int
	Body  []*Stmt
}

// Program is a compilation unit. Funcs[0] is the entry point.
type Program struct {
	Funcs []*Func
}

// Number assigns sequential IDs to every statement (including nested
// ones) and returns the total statement count. It must be called before
// compilation.
func (p *Program) Number() int {
	id := 0
	var walk func(ss []*Stmt)
	walk = func(ss []*Stmt) {
		for _, s := range ss {
			s.ID = id
			id++
			walk(s.Then)
			walk(s.Else)
			walk(s.Body)
		}
	}
	for _, f := range p.Funcs {
		walk(f.Body)
	}
	return id
}

// String renders an expression for diagnostics.
func (e *Expr) String() string {
	switch e.Kind {
	case EConst:
		return fmt.Sprintf("%d", e.Val)
	case EVar:
		return fmt.Sprintf("v%d", e.Var)
	case EBin:
		return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
	case EUn:
		return fmt.Sprintf("u%d(%s)", e.UOp, e.L)
	case ELoad:
		if e.Byte {
			return fmt.Sprintf("mem8[%s]", e.L)
		}
		return fmt.Sprintf("mem[%s]", e.L)
	}
	return "?"
}

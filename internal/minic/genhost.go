package minic

import (
	"fmt"

	"paramdbt/internal/host"
)

// Host calling convention (learning-only code, never executed): arguments
// arrive in eax/edx/ecx and are relocated to homes in ebx/esi/edi and
// then stack slots; eax/ecx/edx are expression temporaries; return value
// in eax. The two-address instruction set forces auxiliary moves — the
// paper's Fig. 6 "auxiliary instructions" — and spilled variables appear
// as memory operands, which the strict verifier then rejects against
// register-resident guest operands, reproducing the candidate drop.

// HLoc is a host variable location.
type HLoc struct {
	InReg bool
	Reg   host.Reg
	Slot  int
}

// HostFunc is the host code generator's output for one function.
type HostFunc struct {
	Insts   []host.Inst
	Entries []GenEntry
	Locs    map[int]HLoc
}

var hostArgRegs = []host.Reg{host.EAX, host.EDX, host.ECX}

// hostLocalRegs includes EBP: the host compiler emits
// frame-pointer-omitted code (ESP-relative slots), freeing EBP as a
// variable home the way -fomit-frame-pointer does. Host binaries are
// learning material only, so this never collides with the DBT's
// EBP-holds-CPUState convention: rules store parameters, not registers.
var hostLocalRegs = []host.Reg{host.EBX, host.ESI, host.EDI, host.EBP}
var hostTempPool = []host.Reg{host.EAX, host.ECX, host.EDX}

type hg struct {
	f     *Func
	out   []host.Inst
	locs  map[int]HLoc
	temps map[host.Reg]bool

	entries []GenEntry

	nextLabel int
	// labels are only markers for sequence realism; host code is never
	// executed, so branch targets stay symbolic label ids.

	lastALUVar  int
	lastALUInst int

	frameSlots int
	style      int // per-function code-style variation (lea usage etc.)
	err        error
}

func (h *hg) fail(format string, args ...interface{}) {
	if h.err == nil {
		h.err = fmt.Errorf("minic/host: "+format, args...)
	}
}

func (h *hg) emit(in host.Inst) int {
	h.out = append(h.out, in)
	return len(h.out) - 1
}

func (h *hg) newLabel() int { h.nextLabel++; return h.nextLabel }

func (h *hg) allocTemp() host.Reg {
	for _, r := range hostTempPool {
		if !h.temps[r] {
			h.temps[r] = true
			return r
		}
	}
	h.fail("out of host temporaries")
	return host.EAX
}

func (h *hg) release(r host.Reg) {
	for _, t := range hostTempPool {
		if t == r {
			delete(h.temps, r)
		}
	}
}

func (h *hg) releaseOp(o host.Operand) {
	switch o.Kind {
	case host.KindReg:
		h.release(o.Reg)
	case host.KindMem:
		h.release(o.Base)
		if o.Scale != 0 {
			h.release(o.Index)
		}
	}
}

func (h *hg) slotMem(slot int) host.Operand {
	return host.Mem(host.ESP, int32(4*slot))
}

// genOp evaluates e into any operand (register, immediate, or a
// variable's memory slot).
func (h *hg) genOp(e *Expr) host.Operand {
	switch e.Kind {
	case EConst:
		return host.Imm(e.Val)
	case EVar:
		loc := h.locs[e.Var]
		if loc.InReg {
			return host.R(loc.Reg)
		}
		return h.slotMem(loc.Slot)
	default:
		return host.R(h.genValue(e, 0xff))
	}
}

// genReg forces e into a register.
func (h *hg) genReg(e *Expr) host.Reg {
	if e.Kind == EVar {
		loc := h.locs[e.Var]
		if loc.InReg {
			return loc.Reg
		}
	}
	return h.genValue(e, 0xff)
}

var hostBinOp = map[BinOp]host.Op{
	OpAdd: host.ADDL, OpSub: host.SUBL, OpMul: host.IMULL,
	OpAnd: host.ANDL, OpOr: host.ORL, OpXor: host.XORL,
	OpShl: host.SHLL, OpShr: host.SHRL, OpSar: host.SARL, OpRor: host.RORL,
}

func isPow2(v int32) (int32, bool) {
	if v > 1 && v&(v-1) == 0 {
		n := int32(0)
		for x := v; x > 1; x >>= 1 {
			n++
		}
		return n, true
	}
	return 0, false
}

// genValue evaluates a non-leaf expression into dst (0xff = fresh temp).
func (h *hg) genValue(e *Expr, dst host.Reg) host.Reg {
	target := func() host.Reg {
		if dst != 0xff {
			return dst
		}
		return h.allocTemp()
	}
	switch e.Kind {
	case EConst:
		d := target()
		h.emit(host.I(host.MOVL, host.R(d), host.Imm(e.Val)))
		return d
	case EVar:
		o := h.genOp(e)
		if dst == 0xff && o.Kind == host.KindReg {
			return o.Reg
		}
		d := target()
		if o.Kind != host.KindReg || o.Reg != d {
			h.emit(host.I(host.MOVL, host.R(d), o))
		}
		return d
	case EBin:
		return h.genBin(e, dst, target)
	case EUn:
		x := h.genOp(e.L)
		h.releaseOp(x)
		d := target()
		switch e.UOp {
		case OpNot:
			h.emit(host.I(host.MOVL, host.R(d), x))
			h.emit(host.I1(host.NOTL, host.R(d)))
		case OpNeg:
			h.emit(host.I(host.MOVL, host.R(d), x))
			h.emit(host.I1(host.NEGL, host.R(d)))
		case OpClz:
			// Branchy bsr sequence: unverifiable on purpose (clz is one
			// of the paper's seven unlearnable instructions).
			skip := h.newLabel()
			h.emit(host.I(host.MOVL, host.R(d), host.Imm(32)))
			h.emit(host.I(host.BSRL, host.R(d), x))
			h.emit(host.Jcc(host.E, skip))
			h.emit(host.I(host.XORL, host.R(d), host.Imm(31)))
		}
		h.releaseOp(x)
		// No noteALU: notl/negl do not set usable flags on the host, so
		// conditions over unary results are never fusion-eligible here
		// (the guest side still fuses, and the verifier rejects the
		// mismatched branch-tail candidates).
		return d
	case ELoad:
		m := h.genAddr(e.L)
		d := target()
		op := host.MOVL
		if e.Byte {
			op = host.MOVZBL
		}
		h.emit(host.I(op, host.R(d), m))
		h.releaseOp(m)
		return d
	}
	h.fail("bad expression")
	return 0
}

func (h *hg) genBin(e *Expr, dst host.Reg, target func() host.Reg) host.Reg {
	// Multiply by a power of two becomes a shift (host-only strength
	// reduction; the guest side keeps mul, exercising the verifier's
	// concrete cross-check).
	if e.Op == OpMul && e.R.Kind == EConst {
		if sh, ok := isPow2(e.R.Val); ok {
			a := h.genOp(e.L)
			d := target()
			if a.Kind != host.KindReg || a.Reg != d {
				h.emit(host.I(host.MOVL, host.R(d), a))
			}
			h.releaseOp(a)
			idx := h.emit(host.I(host.SHLL, host.R(d), host.Imm(sh)))
			h.noteALU(d, idx)
			return d
		}
	}
	// Three-operand add of two registers via lea in odd-styled
	// functions: a second host idiom for the same guest pattern.
	if e.Op == OpAdd && h.style%2 == 1 && e.L.Kind == EVar && e.R.Kind == EVar {
		al, ar := h.locs[e.L.Var], h.locs[e.R.Var]
		if al.InReg && ar.InReg {
			d := target()
			idx := h.emit(host.I(host.LEAL, host.R(d), host.MemIdx(al.Reg, ar.Reg, 1, 0)))
			h.noteALU(d, idx)
			return d
		}
	}
	if e.Op == OpRsb {
		// dst = R - L.
		b := h.genOp(e.R)
		a := h.genOp(e.L)
		h.releaseOp(b)
		d := target()
		if b.Kind != host.KindReg || b.Reg != d {
			h.emit(host.I(host.MOVL, host.R(d), b))
		}
		idx := h.emit(host.I(host.SUBL, host.R(d), a))
		h.releaseOp(a)
		h.noteALU(d, idx)
		return d
	}
	if e.Op == OpBic {
		// dst = L &^ R: movl R, t; notl t; andl L.
		b := h.genOp(e.R)
		h.releaseOp(b)
		d := target()
		if b.Kind != host.KindReg || b.Reg != d {
			h.emit(host.I(host.MOVL, host.R(d), b))
		}
		h.emit(host.I1(host.NOTL, host.R(d)))
		a := h.genOp(e.L)
		idx := h.emit(host.I(host.ANDL, host.R(d), a))
		h.releaseOp(a)
		h.noteALU(d, idx)
		return d
	}
	op, ok := hostBinOp[e.Op]
	if !ok {
		h.fail("no host op for %v", e.Op)
		return 0
	}
	a := h.genOp(e.L)
	b := h.genOp(e.R)
	// Release a's temp before allocating the destination: the move
	// below then collapses when the allocator hands the same register
	// back (safe — nothing allocates in between).
	h.releaseOp(a)
	d := target()
	if a.Kind != host.KindReg || a.Reg != d {
		// imull cannot take a memory destination, nor can two memory
		// operands combine; the move also frees the pattern from the
		// dst==src constraint.
		h.emit(host.I(host.MOVL, host.R(d), a))
	}
	if b.Kind == host.KindMem && op == host.IMULL {
		h.releaseOp(b)
		t := h.allocTemp()
		h.emit(host.I(host.MOVL, host.R(t), b))
		b = host.R(t)
	}
	idx := h.emit(host.I(op, host.R(d), b))
	h.releaseOp(b)
	h.noteALU(d, idx)
	return d
}

func (h *hg) genAddr(e *Expr) host.Operand {
	if e.Kind == EBin && e.Op == OpAdd {
		if e.R.Kind == EConst {
			return host.Mem(h.genReg(e.L), e.R.Val)
		}
		base := h.genReg(e.L)
		idx := h.genReg(e.R)
		return host.MemIdx(base, idx, 1, 0)
	}
	return host.Mem(h.genReg(e), 0)
}

func (h *hg) noteALU(dst host.Reg, inst int) {
	for v, loc := range h.locs {
		if loc.InReg && loc.Reg == dst {
			h.lastALUVar = v
			h.lastALUInst = inst
			return
		}
	}
	h.lastALUVar = -1
}

var hostCmpCond = map[CmpOp]host.Cond{
	CmpEq: host.E, CmpNe: host.NE, CmpLt: host.L, CmpGe: host.GE,
	CmpGt: host.G, CmpLe: host.LE, CmpLoU: host.B, CmpHsU: host.AE,
}

var hostFusedCond = map[CmpOp]host.Cond{
	CmpEq: host.E, CmpNe: host.NE, CmpLt: host.S, CmpGe: host.NS,
}

func hostInvert(c host.Cond) host.Cond {
	switch c {
	case host.E:
		return host.NE
	case host.NE:
		return host.E
	case host.S:
		return host.NS
	case host.NS:
		return host.S
	case host.L:
		return host.GE
	case host.GE:
		return host.L
	case host.G:
		return host.LE
	case host.LE:
		return host.G
	case host.B:
		return host.AE
	case host.AE:
		return host.B
	case host.A:
		return host.BE
	case host.BE:
		return host.A
	case host.O:
		return host.NO
	case host.NO:
		return host.O
	}
	return c
}

func (h *hg) condBranch(c Cond, label int, whenTrue bool) {
	if fusableCmp(c, h.lastALUVar) && h.lastALUInst == len(h.out)-1 {
		// Reuse the EFLAGS of the preceding ALU instruction (x86
		// compilers elide the test the same way).
		cond := hostFusedCond[c.Op]
		if !whenTrue {
			cond = hostInvert(cond)
		}
		h.emit(host.Jcc(cond, label))
		h.lastALUVar = -1
		return
	}
	l := h.genReg(c.L)
	r := h.genOp(c.R)
	h.emit(host.I(host.CMPL, host.R(l), r))
	h.release(l)
	h.releaseOp(r)
	cond := hostCmpCond[c.Op]
	if !whenTrue {
		cond = hostInvert(cond)
	}
	h.emit(host.Jcc(cond, label))
	h.lastALUVar = -1
}

func (h *hg) stmt(s *Stmt) {
	start := len(h.out)
	switch s.Kind {
	case SAssign:
		loc := h.locs[s.Dst]
		if loc.InReg {
			res := h.genValue(s.E, loc.Reg)
			if res != loc.Reg {
				h.emit(host.I(host.MOVL, host.R(loc.Reg), host.R(res)))
				h.release(res)
			}
		} else {
			r := h.genReg(s.E)
			h.emit(host.I(host.MOVL, h.slotMem(loc.Slot), host.R(r)))
			h.release(r)
		}
		h.record(s, start)

	case SStore:
		m := h.genAddr(s.Addr)
		v := h.genReg(s.E)
		op := host.MOVL
		if s.Byte {
			op = host.MOVB
		}
		h.emit(host.I(op, m, host.R(v)))
		h.release(v)
		h.releaseOp(m)
		h.record(s, start)

	case SIf:
		elseL := h.newLabel()
		endL := h.newLabel()
		h.condBranch(s.Cond, elseL, false)
		h.record(s, start)
		for _, n := range s.Then {
			h.stmt(n)
		}
		if len(s.Else) > 0 {
			h.emit(host.Jmp(endL))
			h.lastALUVar = -1
			for _, n := range s.Else {
				h.stmt(n)
			}
		}

	case SWhile:
		endL := h.newLabel()
		headL := h.newLabel()
		h.condBranch(s.Cond, endL, false)
		h.record(s, start)
		for _, n := range s.Body {
			h.stmt(n)
		}
		bottom := len(h.out)
		h.condBranch(s.Cond, headL, true)
		h.entries = append(h.entries, GenEntry{Stmt: s.ID, Start: bottom, End: len(h.out)})

	case SCall:
		if len(s.Args) > len(hostArgRegs) {
			h.fail("too many call arguments")
			return
		}
		for i, a := range s.Args {
			r := h.genValue(a, hostArgRegs[i])
			if r != hostArgRegs[i] {
				h.emit(host.I(host.MOVL, host.R(hostArgRegs[i]), host.R(r)))
				h.release(r)
			}
		}
		h.emit(host.Inst{Op: host.CALL, Dst: host.Label(s.Callee)})
		h.lastALUVar = -1
		if s.Dst >= 0 {
			loc := h.locs[s.Dst]
			if loc.InReg {
				h.emit(host.I(host.MOVL, host.R(loc.Reg), host.R(host.EAX)))
			} else {
				h.emit(host.I(host.MOVL, h.slotMem(loc.Slot), host.R(host.EAX)))
			}
		}
		h.record(s, start)

	case SReturn:
		if s.E != nil {
			r := h.genValue(s.E, host.EAX)
			if r != host.EAX {
				h.emit(host.I(host.MOVL, host.R(host.EAX), host.R(r)))
				h.release(r)
			}
		}
		h.emit(host.Inst{Op: host.RET})
		h.record(s, start)
	}
}

func (h *hg) record(s *Stmt, start int) {
	if len(h.out) > start {
		h.entries = append(h.entries, GenEntry{Stmt: s.ID, Start: start, End: len(h.out)})
	}
}

// GenHost compiles one function to host code for the learning pipeline.
// style varies instruction selection idioms between functions.
func GenHost(f *Func, style int) (*HostFunc, error) {
	h := &hg{
		f:          f,
		locs:       map[int]HLoc{},
		temps:      map[host.Reg]bool{},
		lastALUVar: -1,
		style:      style,
	}
	for v := 0; v < f.NVars; v++ {
		if v < len(hostLocalRegs) {
			h.locs[v] = HLoc{InReg: true, Reg: hostLocalRegs[v]}
		} else {
			h.locs[v] = HLoc{Slot: h.frameSlots}
			h.frameSlots++
		}
	}

	// Prologue: save callee-saved homes, carve the frame, relocate args.
	for v := 0; v < f.NVars && v < len(hostLocalRegs); v++ {
		h.emit(host.I1(host.PUSHL, host.R(hostLocalRegs[v])))
	}
	if h.frameSlots > 0 {
		h.emit(host.I(host.SUBL, host.R(host.ESP), host.Imm(int32(4*h.frameSlots))))
	}
	for a := 0; a < f.NArgs; a++ {
		loc := h.locs[a]
		if loc.InReg {
			h.emit(host.I(host.MOVL, host.R(loc.Reg), host.R(hostArgRegs[a])))
		} else {
			h.emit(host.I(host.MOVL, h.slotMem(loc.Slot), host.R(hostArgRegs[a])))
		}
	}

	for _, s := range f.Body {
		h.stmt(s)
	}

	if h.frameSlots > 0 {
		h.emit(host.I(host.ADDL, host.R(host.ESP), host.Imm(int32(4*h.frameSlots))))
	}
	for v := len(hostLocalRegs) - 1; v >= 0; v-- {
		if v < f.NVars {
			h.emit(host.I1(host.POPL, host.R(hostLocalRegs[v])))
		}
	}
	h.emit(host.Inst{Op: host.RET})

	if h.err != nil {
		return nil, h.err
	}
	return &HostFunc{Insts: h.out, Entries: h.entries, Locs: h.locs}, nil
}

package minic

import (
	"testing"

	"paramdbt/internal/env"
	"paramdbt/internal/guest"
)

// Optimizer soundness: the optimized and unoptimized builds of the same
// program must compute the same caller-visible result. Programs are
// built structurally here (the workload package cannot be imported —
// it sits above minic), covering the transformations the optimizer
// performs: folding, merging, dead-store elimination, inside and
// outside loops.

func optCase(name string, f func() *Program) struct {
	name string
	gen  func() *Program
} {
	return struct {
		name string
		gen  func() *Program
	}{name, f}
}

func runBoth(t *testing.T, gen func() *Program) (optR, rawR *guest.State) {
	t.Helper()
	opt, err := Compile(gen())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := CompileWith(gen(), false)
	if err != nil {
		t.Fatal(err)
	}
	optR, err = opt.RunInterp(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rawR, err = raw.RunInterp(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return optR, rawR
}

func TestOptimizerSoundness(t *testing.T) {
	cases := []struct {
		name string
		gen  func() *Program
	}{
		optCase("fold-chain", func() *Program {
			return &Program{Funcs: []*Func{{
				Name: "main", NVars: 4,
				Body: []*Stmt{
					Assign(1, B(OpAdd, C(3), C(4))),
					Assign(2, B(OpMul, V(1), C(1))),
					Assign(3, B(OpShl, V(2), C(0))),
					Assign(0, B(OpXor, V(3), C(0))),
					Return(V(0)),
				},
			}}}
		}),
		optCase("merge-in-loop", func() *Program {
			return &Program{Funcs: []*Func{{
				Name: "main", NVars: 5,
				Body: []*Stmt{
					Assign(0, C(0)),
					Assign(1, C(30)),
					While(Cond{Op: CmpNe, L: V(1), R: C(0)}, []*Stmt{
						Assign(3, B(OpAdd, V(0), C(7))),
						Assign(0, B(OpXor, V(3), V(1))),
						Assign(1, B(OpSub, V(1), C(1))),
					}),
					Return(V(0)),
				},
			}}}
		}),
		optCase("dead-tail", func() *Program {
			return &Program{Funcs: []*Func{{
				Name: "main", NVars: 5,
				Body: []*Stmt{
					Assign(0, C(5)),
					Assign(3, C(111)), // dead unless kept correctly
					Assign(0, B(OpAdd, V(0), C(2))),
					Assign(4, B(OpMul, V(0), C(2))), // dead
					Return(V(0)),
				},
			}}}
		}),
		optCase("loop-carried", func() *Program {
			// v3 written each iteration, read the NEXT iteration: the
			// merge and DSE must both leave it alone.
			return &Program{Funcs: []*Func{{
				Name: "main", NVars: 5,
				Body: []*Stmt{
					Assign(0, C(0)),
					Assign(3, C(9)),
					Assign(1, C(12)),
					While(Cond{Op: CmpNe, L: V(1), R: C(0)}, []*Stmt{
						Assign(0, B(OpAdd, V(0), V(3))),
						Assign(3, B(OpAdd, V(3), C(1))),
						Assign(1, B(OpSub, V(1), C(1))),
					}),
					Return(V(0)),
				},
			}}}
		}),
		optCase("stores-not-moved", func() *Program {
			return &Program{Funcs: []*Func{{
				Name: "main", NVars: 4,
				Body: []*Stmt{
					Assign(1, C(int32(env.DataBase))),
					Assign(2, C(17)),
					Store(B(OpAdd, V(1), C(4)), V(2)),
					Assign(3, LoadE(B(OpAdd, V(1), C(4)))),
					Store(B(OpAdd, V(1), C(4)), C(99)),
					Assign(0, B(OpAdd, V(3), LoadE(B(OpAdd, V(1), C(4))))),
					Return(V(0)),
				},
			}}}
		}),
		optCase("calls-keep-args", func() *Program {
			f := &Func{
				Name: "f", NArgs: 2, NVars: 3,
				Body: []*Stmt{
					Assign(2, B(OpSub, V(0), V(1))),
					Return(V(2)),
				},
			}
			return &Program{Funcs: []*Func{{
				Name: "main", NVars: 4,
				Body: []*Stmt{
					Assign(1, C(40)),
					Assign(2, B(OpAdd, V(1), C(2))),
					Call(0, 1, V(2), V(1)),
					Return(V(0)),
				},
			}, f}}
		}),
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o, r := runBoth(t, c.gen)
			if o.R[guest.R0] != r.R[guest.R0] {
				t.Fatalf("optimized r0=%#x, unoptimized r0=%#x", o.R[guest.R0], r.R[guest.R0])
			}
			for i := 0; i < 32; i++ {
				addr := env.DataBase + uint32(i*4)
				if o.Mem.Read32(addr) != r.Mem.Read32(addr) {
					t.Fatalf("data[%#x]: optimized %#x vs unoptimized %#x",
						addr, o.Mem.Read32(addr), r.Mem.Read32(addr))
				}
			}
		})
	}
}

// TestOptimizerShrinksCode sanity-checks that -O2 actually removes
// instructions relative to -O0 on a foldable program.
func TestOptimizerShrinksCode(t *testing.T) {
	gen := func() *Program {
		return &Program{Funcs: []*Func{{
			Name: "main", NVars: 4,
			Body: []*Stmt{
				Assign(1, B(OpAdd, C(3), C(4))),
				Assign(2, B(OpMul, V(1), C(1))),
				Assign(3, C(12345)), // dead
				Assign(0, V(2)),
				Return(V(0)),
			},
		}}}
	}
	opt, err := Compile(gen())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := CompileWith(gen(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.GuestInsts) >= len(raw.GuestInsts) {
		t.Fatalf("optimized (%d insts) not smaller than unoptimized (%d)",
			len(opt.GuestInsts), len(raw.GuestInsts))
	}
}

package minic

import (
	"fmt"

	"paramdbt/internal/env"
	"paramdbt/internal/guest"
)

// LinePair is one line-table row: the guest and host instruction
// intervals (function-local indices) generated for one occurrence of a
// statement. Reliable is false when the two compilers emitted a
// different number of chunks for the statement — the modeled GDB-style
// mapping inaccuracy.
type LinePair struct {
	Stmt     int
	G, H     GenEntry
	Reliable bool
}

// CompiledFunc bundles both compilations of one function.
type CompiledFunc struct {
	Fn    *Func
	G     *GuestFunc
	H     *HostFunc
	Pairs []LinePair
}

// Compiled is a fully compiled program.
type Compiled struct {
	Prog      *Program
	StmtCount int
	Opt       OptStats
	Gone      map[int]bool
	Funcs     []*CompiledFunc

	// Linked guest binary.
	GuestInsts []guest.Inst
	FuncStart  []int
}

// Compile optimizes and compiles a program with both backends, builds
// the line tables, and links the guest binary (entry stub + functions).
func Compile(p *Program) (*Compiled, error) { return CompileWith(p, true) }

// CompileWith compiles with the optimizer optionally disabled (-O0);
// the unoptimized build is the oracle for optimizer-soundness tests.
func CompileWith(p *Program, optimize bool) (*Compiled, error) {
	total := p.Number()
	var opt OptStats
	gone := map[int]bool{}
	if optimize {
		opt, gone = Optimize(p)
	}

	c := &Compiled{Prog: p, StmtCount: total, Opt: opt, Gone: gone}

	for i, f := range p.Funcs {
		gf, err := GenGuest(f)
		if err != nil {
			return nil, fmt.Errorf("func %s: %w", f.Name, err)
		}
		hf, err := GenHost(f, i)
		if err != nil {
			return nil, fmt.Errorf("func %s: %w", f.Name, err)
		}
		cf := &CompiledFunc{Fn: f, G: gf, H: hf}
		cf.Pairs = zipEntries(gf.Entries, hf.Entries)
		c.Funcs = append(c.Funcs, cf)
	}

	// Link: stub (bl main; hlt) followed by the functions.
	stubLen := 2
	c.FuncStart = make([]int, len(p.Funcs))
	offset := stubLen
	for i, cf := range c.Funcs {
		c.FuncStart[i] = offset
		offset += len(cf.G.Insts)
	}
	c.GuestInsts = make([]guest.Inst, 0, offset)
	c.GuestInsts = append(c.GuestInsts,
		guest.NewInst(guest.BL, guest.ImmOp(int32(c.FuncStart[0]-stubLen+1-1))), // offset from inst 1
		guest.NewInst(guest.HLT),
	)
	// bl offset: target - (idx+1); idx = 0.
	c.GuestInsts[0].Ops[0].Imm = int32(c.FuncStart[0] - 1)
	for i, cf := range c.Funcs {
		base := c.FuncStart[i]
		for idx, in := range cf.G.Insts {
			if callee, ok := cf.G.CallSites[idx]; ok {
				in.Ops[0].Imm = int32(c.FuncStart[callee] - (base + idx + 1))
			}
			c.GuestInsts = append(c.GuestInsts, in)
		}
	}
	return c, nil
}

// zipEntries pairs guest and host line-table chunks per statement in
// emission order.
func zipEntries(g, h []GenEntry) []LinePair {
	byStmtG := map[int][]GenEntry{}
	byStmtH := map[int][]GenEntry{}
	var order []int
	seen := map[int]bool{}
	for _, e := range g {
		byStmtG[e.Stmt] = append(byStmtG[e.Stmt], e)
		if !seen[e.Stmt] {
			seen[e.Stmt] = true
			order = append(order, e.Stmt)
		}
	}
	for _, e := range h {
		byStmtH[e.Stmt] = append(byStmtH[e.Stmt], e)
	}
	var out []LinePair
	for _, stmt := range order {
		gs, hs := byStmtG[stmt], byStmtH[stmt]
		reliable := len(gs) == len(hs)
		n := len(gs)
		if len(hs) < n {
			n = len(hs)
		}
		for k := 0; k < n; k++ {
			out = append(out, LinePair{Stmt: stmt, G: gs[k], H: hs[k], Reliable: reliable})
		}
	}
	return out
}

// LoadGuest writes the linked guest binary into memory at CodeBase and
// returns the entry PC.
func (c *Compiled) LoadGuest(m interface{ Write32(uint32, uint32) }) (uint32, error) {
	if err := guest.LoadProgram(m, env.CodeBase, c.GuestInsts); err != nil {
		return 0, err
	}
	return env.CodeBase, nil
}

// RunInterp executes the compiled program under the guest interpreter
// (the reference oracle) and returns the final state.
func (c *Compiled) RunInterp(maxInsts uint64) (*guest.State, error) {
	st := guest.NewState()
	if _, err := c.LoadGuest(st.Mem); err != nil {
		return nil, err
	}
	st.SetPC(env.CodeBase)
	st.R[guest.SP] = env.StackTop
	st.R[guest.LR] = 0
	if _, err := st.Run(maxInsts); err != nil {
		return nil, err
	}
	return st, nil
}

// Package serve is the multi-tenant translation server: one shared
// dbt.Service (rule store, prototype cache, batched translation queue)
// fronted by per-request tenant engines, with per-tenant SLO accounting
// on labeled obs metric families. cmd/paradbtd wraps it in an HTTP
// server; tools/loadgen and the experiments serve section drive it
// directly. See docs/SERVING.md.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"paramdbt/internal/backend"
	"paramdbt/internal/core"
	"paramdbt/internal/dbt"
	"paramdbt/internal/env"
	"paramdbt/internal/exp"
	"paramdbt/internal/guest"
	"paramdbt/internal/mem"
	"paramdbt/internal/obs"
)

// Server-level metric names (docs/OBSERVABILITY.md). The serve.tenant_*
// names are vector bases: each tenant gets a member registered under
// the derived name `base{tenant="<id>"}` (see obs.CounterVec).
const (
	// Counters.
	MetRuns      = "serve.runs"       // tenant workload runs completed
	MetRunErrors = "serve.run_errors" // tenant workload runs that failed

	// Per-tenant counter families (SLO accounting).
	MetTenantBlocks      = "serve.tenant_blocks"       // distinct blocks the tenant executed
	MetTenantGuestInsts  = "serve.tenant_guest_insts"  // guest instructions the tenant retired
	MetTenantDivergences = "serve.tenant_divergences"  // shadow divergences charged to the tenant
	MetTenantRateSnaps   = "serve.tenant_rate_snaps"   // adaptive-controller snaps in the tenant's runs
	MetTenantShadowPPM   = "serve.tenant_shadow_ppm"   // gauge: tenant's shadow rate after its last run, ppm
	MetTenantTranslations = "serve.tenant_translations" // translations the tenant led (single-flight leader)

	// Histogram (telemetry).
	MetRunNs = "serve.run_ns" // per-tenant end-to-end run latency
)

// Config configures a Server. The zero value serves the full workload
// suite at scale 1, every tenant starting at shadow rate 1 with the
// adaptive controller on.
type Config struct {
	// Scale is the workload dynamic-work multiplier (default 1).
	Scale int
	// Workers/QueueDepth/SpecDepth configure the shared translation
	// queue (see dbt.ServiceConfig for defaults).
	Workers    int
	QueueDepth int
	SpecDepth  int

	// ShadowRate is each tenant's starting shadow-verification rate
	// (default 1: every tenant starts fully verified). NoShadow
	// disables verification entirely (bench-only; the serving default
	// keeps the guard on).
	ShadowRate float64
	NoShadow   bool
	// Adaptive enables the per-tenant guard controller (default on via
	// NewServer unless NoAdaptive is set).
	NoAdaptive     bool
	ShadowMinRate  float64
	ShadowHalfLife uint64

	// Backend is the host backend; nil selects backend.Default().
	Backend backend.Backend
	// Metrics, when non-nil, is the registry the serve.* and
	// dbt.serve_* families register in; nil gives the server a private
	// registry.
	Metrics *obs.Registry
	// FlushTo, when non-nil, receives a final JSON metrics snapshot
	// when the server closes (the graceful-shutdown stats flush).
	FlushTo io.Writer
}

// Server shares one translation service across tenant engines.
type Server struct {
	cfg    Config
	corpus *exp.Corpus
	svc    *dbt.Service
	reg    *obs.Registry

	runs      *obs.Counter
	runErrors *obs.Counter
	runNs     *obs.Histogram

	tenantBlocks       *obs.CounterVec
	tenantInsts        *obs.CounterVec
	tenantDivergences  *obs.CounterVec
	tenantSnaps        *obs.CounterVec
	tenantTranslations *obs.CounterVec
	tenantShadowPPM    *obs.GaugeVec

	next    atomic.Uint64
	closing sync.Once
	closed  atomic.Bool
	flushed error
}

// NewServer builds the corpus, parameterizes the union rule store and
// starts the shared translation service.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.ShadowRate == 0 && !cfg.NoShadow {
		cfg.ShadowRate = 1
	}
	corpus, err := exp.BuildCorpus(cfg.Scale)
	if err != nil {
		return nil, err
	}
	rules, _ := core.Parameterize(corpus.Union(corpus.Names), core.Config{Opcode: true, AddrMode: true})
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	svc := dbt.NewService(dbt.ServiceConfig{
		Rules:         rules,
		Backend:       cfg.Backend,
		DelegateFlags: true,
		Workers:       cfg.Workers,
		QueueDepth:    cfg.QueueDepth,
		SpecDepth:     cfg.SpecDepth,
		Metrics:       reg,
	})
	return &Server{
		cfg:                cfg,
		corpus:             corpus,
		svc:                svc,
		reg:                reg,
		runs:               reg.Counter(MetRuns),
		runErrors:          reg.Counter(MetRunErrors),
		runNs:              reg.Histogram(MetRunNs),
		tenantBlocks:       reg.CounterVec(MetTenantBlocks, "tenant"),
		tenantInsts:        reg.CounterVec(MetTenantGuestInsts, "tenant"),
		tenantDivergences:  reg.CounterVec(MetTenantDivergences, "tenant"),
		tenantSnaps:        reg.CounterVec(MetTenantRateSnaps, "tenant"),
		tenantTranslations: reg.CounterVec(MetTenantTranslations, "tenant"),
		tenantShadowPPM:    reg.GaugeVec(MetTenantShadowPPM, "tenant"),
	}, nil
}

// Metrics returns the server's registry (serve.* plus dbt.serve_*).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Service returns the shared translation service.
func (s *Server) Service() *dbt.Service { return s.svc }

// Benches lists the servable workload names.
func (s *Server) Benches() []string { return append([]string(nil), s.corpus.Names...) }

// Stats snapshots the shared service's counters.
func (s *Server) Stats() dbt.ServiceStats { return s.svc.Stats() }

// TenantResult is one tenant workload execution.
type TenantResult struct {
	Tenant      uint64    `json:"tenant"`
	Bench       string    `json:"bench"`
	R0          uint32    `json:"r0"`
	Stats       dbt.Stats `json:"stats"`
	ShadowRate  float64   `json:"shadow_rate_now"`
	ElapsedNs   int64     `json:"elapsed_ns"`
	UsedService bool      `json:"used_service"`
}

// RunTenant executes the named workload as a fresh tenant: a private
// engine (own guest memory, architectural state, code cache, shadow
// controller) attached to the shared service, charged to a new tenant
// id in the per-tenant metric families. Safe to call concurrently; each
// call is one tenant.
func (s *Server) RunTenant(bench string) (TenantResult, error) {
	comp, ok := s.corpus.Comp[bench]
	if !ok {
		return TenantResult{}, fmt.Errorf("serve: unknown bench %q", bench)
	}
	if s.closed.Load() {
		return TenantResult{}, fmt.Errorf("serve: server closed")
	}
	id := s.next.Add(1)
	m := mem.New()
	if _, err := comp.LoadGuest(m); err != nil {
		return TenantResult{}, err
	}
	rate := s.cfg.ShadowRate
	if s.cfg.NoShadow {
		rate = 0
	}
	e := dbt.New(m, dbt.Config{
		Rules:          s.svc.Rules(),
		Backend:        s.cfg.Backend,
		DelegateFlags:  true,
		ShadowRate:     rate,
		ShadowSeed:     int64(id),
		AdaptiveShadow: rate > 0 && !s.cfg.NoAdaptive,
		ShadowMinRate:  s.cfg.ShadowMinRate,
		ShadowHalfLife: s.cfg.ShadowHalfLife,
		Service:        s.svc,
	})
	init := &guest.State{Mem: m}
	init.R[guest.SP] = env.StackTop
	e.SetGuestState(init)
	t0 := time.Now()
	st, err := e.Run(env.CodeBase, 4_000_000_000)
	elapsed := time.Since(t0)
	if err != nil {
		s.runErrors.Inc()
		return TenantResult{}, fmt.Errorf("tenant %d %s: %w", id, bench, err)
	}
	s.runs.Inc()

	label := strconv.FormatUint(id, 10)
	s.tenantBlocks.With(label).Add(uint64(st.Blocks))
	s.tenantInsts.With(label).Add(st.GuestExec)
	s.tenantDivergences.With(label).Add(st.Divergences)
	s.tenantSnaps.With(label).Add(st.RateSnaps)
	s.tenantTranslations.With(label).Add(st.Translations)
	if obs.On() {
		s.runNs.Observe(uint64(elapsed.Nanoseconds()))
		s.tenantShadowPPM.With(label).Set(int64(e.ShadowRateNow() * 1e6))
	}
	return TenantResult{
		Tenant:      id,
		Bench:       bench,
		R0:          e.GuestState().R[guest.R0],
		Stats:       st,
		ShadowRate:  e.ShadowRateNow(),
		ElapsedNs:   elapsed.Nanoseconds(),
		UsedService: e.Attached(),
	}, nil
}

// RunSummary aggregates one RunTenants fan-out (the /run response
// body).
type RunSummary struct {
	Bench       string           `json:"bench"`
	Tenants     int              `json:"tenants"`
	R0          uint32           `json:"r0"`
	R0Uniform   bool             `json:"r0_uniform"`
	Divergences uint64           `json:"divergences"`
	RateSnaps   uint64           `json:"rate_snaps"`
	Service     dbt.ServiceStats `json:"service"`
	Results     []TenantResult   `json:"results,omitempty"`
}

// RunTenants runs n concurrent tenants of the named workload and
// aggregates their results.
func (s *Server) RunTenants(bench string, n int) (RunSummary, error) {
	if n <= 0 {
		n = 1
	}
	results := make([]TenantResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.RunTenant(bench)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return RunSummary{}, err
		}
	}
	sum := RunSummary{Bench: bench, Tenants: n, R0: results[0].R0, R0Uniform: true, Results: results}
	for _, r := range results {
		if r.R0 != sum.R0 {
			sum.R0Uniform = false
		}
		sum.Divergences += r.Stats.Divergences
		sum.RateSnaps += r.Stats.RateSnaps
	}
	sum.Service = s.svc.Stats()
	return sum, nil
}

// Handler returns the HTTP surface: /healthz, /metrics (registry JSON
// snapshot), and /run?bench=<name>&tenants=<n>[&detail=1].
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.closed.Load() {
			http.Error(w, `{"status":"closing"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		bench := r.URL.Query().Get("bench")
		if bench == "" {
			names := s.Benches()
			sort.Strings(names)
			http.Error(w, fmt.Sprintf("missing ?bench=; one of %v", names), http.StatusBadRequest)
			return
		}
		n, _ := strconv.Atoi(r.URL.Query().Get("tenants"))
		if n <= 0 {
			n = 1
		}
		if n > 16384 {
			http.Error(w, "tenants capped at 16384", http.StatusBadRequest)
			return
		}
		sum, err := s.RunTenants(bench, n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if r.URL.Query().Get("detail") == "" {
			sum.Results = nil
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// Close drains the translation service (queued demand requests are
// served; see dbt.Service.Close) and, when Config.FlushTo is set,
// writes the final metrics snapshot — the serving layer's graceful
// shutdown. Idempotent; returns the flush error, if any.
func (s *Server) Close() error {
	s.closing.Do(func() {
		s.closed.Store(true)
		s.svc.Close()
		if s.cfg.FlushTo != nil {
			s.flushed = s.reg.WriteJSON(s.cfg.FlushTo)
		}
	})
	return s.flushed
}

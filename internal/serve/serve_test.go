package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"paramdbt/internal/dbt"
	"paramdbt/internal/obs"
)

// These tests cover the serving layer (`make test-serve`, including a
// -race arm — keep the TestServer name prefix, it is the gate's -run
// pattern).

var (
	sharedOnce sync.Once
	sharedSrv  *Server
	sharedErr  error
)

// sharedServer builds one server for the read-only tests (corpus
// compilation and rule learning dominate construction cost).
func sharedServer(t *testing.T) *Server {
	t.Helper()
	sharedOnce.Do(func() { sharedSrv, sharedErr = NewServer(Config{}) })
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedSrv
}

// TestServerTenantsAgree: concurrent tenants of one workload produce
// identical results at full starting shadow rate with zero divergences,
// attached to the service, and their summed translation counts equal
// the service's single-flight leader count.
func TestServerTenantsAgree(t *testing.T) {
	s := sharedServer(t)
	bench := "mcf"
	base := s.Stats()
	sum, err := s.RunTenants(bench, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.R0Uniform {
		t.Fatal("tenants disagreed on r0")
	}
	if sum.Divergences != 0 {
		t.Fatalf("%d divergences across tenants", sum.Divergences)
	}
	var tenantTranslations uint64
	for _, r := range sum.Results {
		if !r.UsedService {
			t.Fatalf("tenant %d ran detached", r.Tenant)
		}
		if r.Stats.ShadowChecks == 0 {
			t.Fatalf("tenant %d ran unverified", r.Tenant)
		}
		tenantTranslations += r.Stats.Translations
	}
	if got := sum.Service.Translations - base.Translations; tenantTranslations != got {
		t.Fatalf("summed tenant translations = %d, service performed %d", tenantTranslations, got)
	}
	if sum.Service.Requests == base.Requests {
		t.Fatal("tenants never reached the service")
	}
}

// TestServerUnknownBench: a bad workload name is a typed error, not a
// panic, and counts nothing.
func TestServerUnknownBench(t *testing.T) {
	s := sharedServer(t)
	if _, err := s.RunTenant("no-such-bench"); err == nil {
		t.Fatal("unknown bench accepted")
	}
}

// TestServerHandler covers the HTTP surface: health, the metrics
// snapshot (serve.* families visible), and the run endpoint.
func TestServerHandler(t *testing.T) {
	s := sharedServer(t)
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/run?bench=mcf&tenants=2", nil))
	if rec.Code != 200 {
		t.Fatalf("run = %d %q", rec.Code, rec.Body.String())
	}
	var sum RunSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Tenants != 2 || !sum.R0Uniform || sum.Divergences != 0 {
		t.Fatalf("run summary %+v", sum)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/run", nil))
	if rec.Code != 400 {
		t.Fatalf("missing bench = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/run?bench=nope", nil))
	if rec.Code != 500 {
		t.Fatalf("unknown bench = %d, want 500", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, name := range []string{MetRuns, MetTenantBlocks, dbt.MetServeRequests} {
		if !strings.Contains(body, name) {
			t.Fatalf("metrics snapshot missing %q", name)
		}
	}
}

// TestServerLoadSmoke is the deterministic small-N load check wired
// into CI: N concurrent tenants, every one starting at shadow rate 1
// with the adaptive controller on, zero divergences, one per-tenant
// accounting row each.
func TestServerLoadSmoke(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	s, err := NewServer(Config{ShadowHalfLife: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const tenants = 24
	sum, err := s.RunTenants("libquantum", tenants)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.R0Uniform || sum.Divergences != 0 {
		t.Fatalf("load smoke: %+v", sum)
	}
	if got := s.Metrics().Counter(MetRuns).Value(); got != tenants {
		t.Fatalf("serve.runs = %d, want %d", got, tenants)
	}
	if got := len(s.tenantBlocks.Labels()); got != tenants {
		t.Fatalf("%d tenant accounting rows, want %d", got, tenants)
	}
	if s.Metrics().Histogram(MetRunNs).Count() != tenants {
		t.Fatal("run latency histogram incomplete")
	}
	if sum.Service.DedupRate() == 0 {
		t.Fatal("no sharing across identical tenants")
	}
	// Adaptive controller active: with tenants starting at rate 1 and a
	// clean run, decayed-below-1 rates must be visible in the gauges.
	decayed := false
	for _, r := range sum.Results {
		if r.ShadowRate < 1 {
			decayed = true
		}
	}
	if !decayed {
		t.Fatal("no tenant's shadow rate decayed on a clean run")
	}
}

// TestServerGracefulShutdown: Close drains the shared service, flushes
// the final metrics snapshot, and turns the server away cleanly —
// idempotently.
func TestServerGracefulShutdown(t *testing.T) {
	var flush bytes.Buffer
	s, err := NewServer(Config{FlushTo: &flush})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunTenant("mcf"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !s.Service().Closed() {
		t.Fatal("Close did not close the translation service")
	}
	out := flush.String()
	for _, name := range []string{MetRuns, MetTenantBlocks, dbt.MetServeRequests} {
		if !strings.Contains(out, name) {
			t.Fatalf("final flush missing %q", name)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close not idempotent")
	}
	if n := flush.Len(); n != len(out) {
		t.Fatal("second Close flushed again")
	}
	if _, err := s.RunTenant("mcf"); err == nil {
		t.Fatal("closed server accepted a tenant")
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("healthz after Close = %d, want 503", rec.Code)
	}
}

GO ?= go

.PHONY: ci vet build test race bench bench-dispatch experiments

ci: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark: smoke-checks the harness without the
# full measurement run.
bench:
	$(GO) test -run NONE -bench . -benchtime 1x -benchmem ./...

# The dispatch/lookup microbenchmarks at measurement benchtime; raw
# output is recorded in BENCH_dispatch.json.
bench-dispatch:
	$(GO) test -run NONE -bench 'BenchmarkDispatchChaining|BenchmarkLookupKey' \
		-benchtime 100x -benchmem .

experiments:
	$(GO) run ./cmd/experiments

GO ?= go

# The staticcheck release CI is reproducible against. The binary is not
# vendored and CI never installs it (the toolchain is hermetic): when
# it is present it must be this version, when absent the lint step says
# exactly what to install.
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: ci vet lint staticcheck obsgate counterdoc ruleaudit codeaudit build test test-backends race race-obs test-faults test-persistence test-smc test-serve bench bench-dispatch bench-obs bench-backends bench-trace bench-check bench-warmstart bench-warmstart-check bench-smc bench-smc-check bench-peephole bench-peephole-check bench-serve bench-serve-check experiments linkcheck

ci: lint build race test-backends test-faults test-persistence test-smc test-serve linkcheck bench

# Opt-in wall-clock gate: `CHECK_TRACE=1 make ci` re-measures the
# dispatch arms and fails unless the superblock engine beats both
# recorded BENCH_dispatch.json baselines. Off by default because ns/op
# on shared CI machines is too noisy to block every merge on.
ifeq ($(CHECK_TRACE),1)
ci: bench-trace bench-check
endif

# Same opt-in, same noise rationale, for the write-tracking overhead
# gate: `CHECK_SMC=1 make ci` re-measures BenchmarkSMC and fails unless
# the tracked arm stays within 2% of the recorded superblock baseline.
ifeq ($(CHECK_SMC),1)
ci: bench-smc bench-smc-check
endif

# Same opt-in for the codegen-quality gate: `CHECK_PEEPHOLE=1 make ci`
# re-measures BenchmarkPeephole and fails unless the validator-licensed
# peephole pass keeps the risc host-insts/guest-inst ratio below the
# as-lowered stream and below +6.7% of x86. The gated ratio is a
# retired-instruction count (deterministic), but the arms take a
# measurement-length run, hence opt-in.
ifeq ($(CHECK_PEEPHOLE),1)
ci: bench-peephole bench-peephole-check
endif

# Same opt-in for the serving-load gate: `CHECK_SERVE=1 make ci`
# re-drives the 1000-tenant load harness and fails unless the shared
# service beats N independent engines on translations and resident
# heap with zero divergences (docs/SERVING.md). The functional serving
# suite runs un-gated via test-serve; only the wall-clock load run is
# opt-in.
ifeq ($(CHECK_SERVE),1)
ci: bench-serve bench-serve-check
endif

vet:
	$(GO) vet ./...

# Repo lint: standard vet, the two vettool checkers (tools/lint/obsgate
# for telemetry gating, tools/lint/counterdoc for the metric catalog —
# both directions: every Met* constant documented, every documented
# name declared), and the pinned staticcheck.
lint: vet obsgate counterdoc staticcheck
	$(GO) vet -vettool=bin/obsgate ./...
	$(GO) vet -vettool=bin/counterdoc ./...
	bin/counterdoc -reverse docs/OBSERVABILITY.md

# staticcheck runs un-gated in ci (via lint) whenever the binary is on
# PATH, pinned to $(STATICCHECK_VERSION) so two machines cannot
# disagree about what clean means. It is not vendored and the toolchain
# stays hermetic (no downloads in CI), so an absent binary is a loud
# skip naming the exact version to install, not a silent pass.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		v=$$(staticcheck -version 2>/dev/null); \
		case "$$v" in \
		*$(STATICCHECK_VERSION)*) staticcheck ./... ;; \
		*) echo "lint: staticcheck is '$$v', want $(STATICCHECK_VERSION) (honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; exit 1 ;; \
		esac \
	else \
		echo "lint: staticcheck not installed, skipping (pin: honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))" ; \
	fi

obsgate:
	$(GO) build -o bin/obsgate ./tools/lint/obsgate

counterdoc:
	$(GO) build -o bin/counterdoc ./tools/lint/counterdoc

# Static audit of the full parameterized rule store (JSON verdicts on
# stdout; see docs/ANALYSIS.md).
ruleaudit:
	$(GO) run ./cmd/ruleaudit -summary

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The tier-1 suite under every host backend: PARAMDBT_BACKEND selects
# the backend.Default() every engine, test, and tool falls back to, so
# one env knob re-runs the whole tree through each lowering pipeline.
test-backends:
	PARAMDBT_BACKEND=x86 $(GO) test ./...
	PARAMDBT_BACKEND=risc $(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the observability layer, its hottest consumer,
# and the guard/quarantine paths that intentionally race live lookups.
race-obs:
	$(GO) test -race -count=1 ./internal/obs ./internal/dbt ./internal/rule ./internal/guard/...

# The engine suite's fault-injection scenarios, including the canned
# plan in internal/dbt/testdata/faultplan.json (the robustness
# acceptance run; see docs/ROBUSTNESS.md).
test-faults:
	$(GO) test -count=1 -run 'TestFaultPlanCanned|TestShadow|TestTranslatorPanicRecovery|TestRunPanicReturnsTypedError|TestInterpFallback|TestDropShardSurvives' ./internal/dbt

# The warm-start persistence suite: the artifact store's hardening
# tests (corruption, key mismatches, quarantine-shard merge) plus the
# engine round-trip tests proving a warm engine replays every workload
# identically with zero demand translations (see docs/PERSISTENCE.md).
test-persistence:
	$(GO) test -count=1 ./internal/artifact
	$(GO) test -count=1 -run 'TestWarmStart|TestWarmstartExperiment' ./internal/dbt ./internal/exp

# The self-modifying-code scenarios (docs/ROBUSTNESS.md "Self-modifying
# code"): write-then-execute in the store's own block, cross-block
# overwrite, overwrite mid-superblock and during async formation, the
# fault-injected code pokes, the TraceBudget refund, the builder-panic
# recovery and the artifact page-checksum reject — functionally and
# under the race detector (the async scenarios run guest
# self-modification against the background builder and the speculative
# worker pool).
test-smc:
	$(GO) test -count=1 -run TestSMC ./internal/workload ./internal/dbt
	$(GO) test -race -count=1 -run TestSMC ./internal/workload ./internal/dbt

# The multi-tenant serving suite (docs/SERVING.md): the shared
# translation service's single-flight/backpressure/shutdown/quarantine
# scenarios, the adaptive shadow controller, the rule-store reseed
# stress, and the serving layer's deterministic small-N load smoke —
# functionally and under the race detector.
test-serve:
	$(GO) test -count=1 -run 'TestService|TestAdaptive|TestStoreReseed' ./internal/dbt
	$(GO) test -count=1 ./internal/serve
	$(GO) test -race -count=1 -run 'TestService|TestAdaptive|TestStoreReseed' ./internal/dbt
	$(GO) test -race -count=1 ./internal/serve

# Warm-start wall-clock and translation-count measurement: runs the
# cold/warm artifact-store comparison and records both arms in
# BENCH_warmstart.json.
bench-warmstart:
	$(GO) test -run NONE -bench BenchmarkWarmstart -benchtime 20x . 		| tee /dev/stderr | $(GO) run ./tools/benchtrace -record-warmstart BENCH_warmstart.json

# Regression gate for the warm-start result: fails unless the recorded
# warm arm demand-translates strictly fewer blocks than the cold arm.
bench-warmstart-check:
	$(GO) run ./tools/benchtrace -check-warmstart BENCH_warmstart.json

# Dead-link check over README/docs markdown (relative links and
# [[file:line]] source references).
linkcheck:
	$(GO) run ./cmd/linkcheck

# One pass over every benchmark: smoke-checks the harness without the
# full measurement run.
bench:
	$(GO) test -run NONE -bench . -benchtime 1x -benchmem ./...

# The dispatch/lookup microbenchmarks at measurement benchtime; raw
# output is recorded in BENCH_dispatch.json.
bench-dispatch:
	$(GO) test -run NONE -bench 'BenchmarkDispatchChaining|BenchmarkLookupKey' \
		-benchtime 100x -benchmem .

# Hot-trace superblock wall-clock measurement: runs the dispatch
# strategy comparison and records chained vs no-chain vs superblocks
# ns/op (plus the superblock arm's trace metrics) in BENCH_trace.json.
bench-trace:
	$(GO) test -run NONE -bench BenchmarkDispatchChaining -benchtime 20x . 		| tee /dev/stderr | $(GO) run ./tools/benchtrace -record BENCH_trace.json

# Regression gate for the superblock result: fails unless the recorded
# superblock ns/op beats BOTH dispatch baselines in BENCH_dispatch.json
# (beating chained but not no-chain would mean trace translation still
# costs more than the superblocks save).
bench-check:
	$(GO) run ./tools/benchtrace -check BENCH_trace.json -against BENCH_dispatch.json

# Write-tracking overhead measurement: runs the tracked/untracked
# superblock arms plus the hostile smc-async workload and records all
# three in BENCH_smc.json.
bench-smc:
	$(GO) test -run NONE -bench BenchmarkSMC -benchtime 20x . 		| tee /dev/stderr | $(GO) run ./tools/benchtrace -record-smc BENCH_smc.json

# Regression gate for the write tracker's fast path: fails unless the
# recorded tracked arm stays within 2% of the BENCH_trace.json
# superblock arm (same workload and configuration, recorded before
# write tracking existed).
bench-smc-check:
	$(GO) run ./tools/benchtrace -check-smc BENCH_smc.json -against-trace BENCH_trace.json

# Peephole payoff measurement: runs the risc as-lowered / risc-peephole
# / x86 arms on the chained gcc workload and records each arm's
# host-insts/guest-inst in BENCH_peephole.json.
bench-peephole:
	$(GO) test -run NONE -bench BenchmarkPeephole -benchtime 20x . 		| tee /dev/stderr | $(GO) run ./tools/benchtrace -record-peephole BENCH_peephole.json

# Regression gate for the peephole result: fails unless the recorded
# optimized risc ratio is strictly below the as-lowered ratio and below
# the +6.7% legalization-overhead line against the recorded x86 arm.
bench-peephole-check:
	$(GO) run ./tools/benchtrace -check-peephole BENCH_peephole.json

# Serving load measurement: drives 1000 concurrent tenants through one
# shared translation service and through N independent engines, and
# records both arms (translations, resident heap, run/queue-wait
# latency quantiles, dedupe rate) in BENCH_serve.json.
bench-serve:
	$(GO) run ./tools/loadgen -tenants 1000 -out BENCH_serve.json

# Regression gate for the serving result: fails unless the recorded
# shared arm translated strictly less and resided in strictly less
# heap than the independent arm, with zero divergences in both arms
# and the adaptive controller demonstrably active.
bench-serve-check:
	$(GO) run ./tools/loadgen -check BENCH_serve.json

# Static audit of every block the workload suite translates, via the
# translation validator (JSON verdicts on stdout; see docs/ANALYSIS.md
# "Translation validation").
codeaudit:
	$(GO) run ./cmd/codeaudit -summary

# The disabled-telemetry overhead guard (must stay 0 allocs/op, ~sub-ns).
bench-obs:
	$(GO) test -run NONE -bench BenchmarkObsDisabledOverhead -benchmem .

# The cross-backend dispatch/workload benchmarks; raw output is recorded
# in BENCH_backend.json.
bench-backends:
	$(GO) test -run NONE -bench 'BenchmarkBackend' -benchtime 20x -benchmem .

experiments:
	$(GO) run ./cmd/experiments

GO ?= go

.PHONY: ci vet lint obsgate ruleaudit build test test-backends race race-obs test-faults test-persistence test-smc bench bench-dispatch bench-obs bench-backends bench-trace bench-check bench-warmstart bench-warmstart-check bench-smc bench-smc-check experiments linkcheck

ci: lint build race test-backends test-faults test-persistence test-smc linkcheck bench

# Opt-in wall-clock gate: `CHECK_TRACE=1 make ci` re-measures the
# dispatch arms and fails unless the superblock engine beats both
# recorded BENCH_dispatch.json baselines. Off by default because ns/op
# on shared CI machines is too noisy to block every merge on.
ifeq ($(CHECK_TRACE),1)
ci: bench-trace bench-check
endif

# Same opt-in, same noise rationale, for the write-tracking overhead
# gate: `CHECK_SMC=1 make ci` re-measures BenchmarkSMC and fails unless
# the tracked arm stays within 2% of the recorded superblock baseline.
ifeq ($(CHECK_SMC),1)
ci: bench-smc bench-smc-check
endif

vet:
	$(GO) vet ./...

# Repo lint: standard vet, the obsgate telemetry-gating checker
# (tools/lint/obsgate, run as a vettool), and staticcheck when the
# binary is installed (it is not vendored; the gate keeps CI hermetic).
lint: vet obsgate
	$(GO) vet -vettool=bin/obsgate ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "lint: staticcheck not installed, skipping" ; \
	fi

obsgate:
	$(GO) build -o bin/obsgate ./tools/lint/obsgate

# Static audit of the full parameterized rule store (JSON verdicts on
# stdout; see docs/ANALYSIS.md).
ruleaudit:
	$(GO) run ./cmd/ruleaudit -summary

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The tier-1 suite under every host backend: PARAMDBT_BACKEND selects
# the backend.Default() every engine, test, and tool falls back to, so
# one env knob re-runs the whole tree through each lowering pipeline.
test-backends:
	PARAMDBT_BACKEND=x86 $(GO) test ./...
	PARAMDBT_BACKEND=risc $(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the observability layer, its hottest consumer,
# and the guard/quarantine paths that intentionally race live lookups.
race-obs:
	$(GO) test -race -count=1 ./internal/obs ./internal/dbt ./internal/rule ./internal/guard/...

# The engine suite's fault-injection scenarios, including the canned
# plan in internal/dbt/testdata/faultplan.json (the robustness
# acceptance run; see docs/ROBUSTNESS.md).
test-faults:
	$(GO) test -count=1 -run 'TestFaultPlanCanned|TestShadow|TestTranslatorPanicRecovery|TestRunPanicReturnsTypedError|TestInterpFallback|TestDropShardSurvives' ./internal/dbt

# The warm-start persistence suite: the artifact store's hardening
# tests (corruption, key mismatches, quarantine-shard merge) plus the
# engine round-trip tests proving a warm engine replays every workload
# identically with zero demand translations (see docs/PERSISTENCE.md).
test-persistence:
	$(GO) test -count=1 ./internal/artifact
	$(GO) test -count=1 -run 'TestWarmStart|TestWarmstartExperiment' ./internal/dbt ./internal/exp

# The self-modifying-code scenarios (docs/ROBUSTNESS.md "Self-modifying
# code"): write-then-execute in the store's own block, cross-block
# overwrite, overwrite mid-superblock and during async formation, the
# fault-injected code pokes, the TraceBudget refund, the builder-panic
# recovery and the artifact page-checksum reject — functionally and
# under the race detector (the async scenarios run guest
# self-modification against the background builder and the speculative
# worker pool).
test-smc:
	$(GO) test -count=1 -run TestSMC ./internal/workload ./internal/dbt
	$(GO) test -race -count=1 -run TestSMC ./internal/workload ./internal/dbt

# Warm-start wall-clock and translation-count measurement: runs the
# cold/warm artifact-store comparison and records both arms in
# BENCH_warmstart.json.
bench-warmstart:
	$(GO) test -run NONE -bench BenchmarkWarmstart -benchtime 20x . 		| tee /dev/stderr | $(GO) run ./tools/benchtrace -record-warmstart BENCH_warmstart.json

# Regression gate for the warm-start result: fails unless the recorded
# warm arm demand-translates strictly fewer blocks than the cold arm.
bench-warmstart-check:
	$(GO) run ./tools/benchtrace -check-warmstart BENCH_warmstart.json

# Dead-link check over README/docs markdown (relative links and
# [[file:line]] source references).
linkcheck:
	$(GO) run ./cmd/linkcheck

# One pass over every benchmark: smoke-checks the harness without the
# full measurement run.
bench:
	$(GO) test -run NONE -bench . -benchtime 1x -benchmem ./...

# The dispatch/lookup microbenchmarks at measurement benchtime; raw
# output is recorded in BENCH_dispatch.json.
bench-dispatch:
	$(GO) test -run NONE -bench 'BenchmarkDispatchChaining|BenchmarkLookupKey' \
		-benchtime 100x -benchmem .

# Hot-trace superblock wall-clock measurement: runs the dispatch
# strategy comparison and records chained vs no-chain vs superblocks
# ns/op (plus the superblock arm's trace metrics) in BENCH_trace.json.
bench-trace:
	$(GO) test -run NONE -bench BenchmarkDispatchChaining -benchtime 20x . 		| tee /dev/stderr | $(GO) run ./tools/benchtrace -record BENCH_trace.json

# Regression gate for the superblock result: fails unless the recorded
# superblock ns/op beats BOTH dispatch baselines in BENCH_dispatch.json
# (beating chained but not no-chain would mean trace translation still
# costs more than the superblocks save).
bench-check:
	$(GO) run ./tools/benchtrace -check BENCH_trace.json -against BENCH_dispatch.json

# Write-tracking overhead measurement: runs the tracked/untracked
# superblock arms plus the hostile smc-async workload and records all
# three in BENCH_smc.json.
bench-smc:
	$(GO) test -run NONE -bench BenchmarkSMC -benchtime 20x . 		| tee /dev/stderr | $(GO) run ./tools/benchtrace -record-smc BENCH_smc.json

# Regression gate for the write tracker's fast path: fails unless the
# recorded tracked arm stays within 2% of the BENCH_trace.json
# superblock arm (same workload and configuration, recorded before
# write tracking existed).
bench-smc-check:
	$(GO) run ./tools/benchtrace -check-smc BENCH_smc.json -against-trace BENCH_trace.json

# The disabled-telemetry overhead guard (must stay 0 allocs/op, ~sub-ns).
bench-obs:
	$(GO) test -run NONE -bench BenchmarkObsDisabledOverhead -benchmem .

# The cross-backend dispatch/workload benchmarks; raw output is recorded
# in BENCH_backend.json.
bench-backends:
	$(GO) test -run NONE -bench 'BenchmarkBackend' -benchtime 20x -benchmem .

experiments:
	$(GO) run ./cmd/experiments

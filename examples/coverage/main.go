// Coverage study: how the training-set size affects dynamic coverage
// with and without parameterization — an interactive version of the
// paper's Fig. 16, including the per-benchmark breakdown for one chosen
// training set.
//
//	go run ./examples/coverage
//	go run ./examples/coverage -k 3 -repeats 2
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"paramdbt/internal/core"
	"paramdbt/internal/dbt"
	"paramdbt/internal/exp"
)

func main() {
	k := flag.Int("k", 4, "training-set size for the breakdown section")
	repeats := flag.Int("repeats", 3, "random draws for the sweep")
	maxK := flag.Int("maxk", 8, "largest training-set size in the sweep")
	flag.Parse()

	corpus, err := exp.BuildCorpus(1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== coverage vs training-set size (cf. Fig 16) ==")
	points, err := exp.Fig16(corpus, *maxK, *repeats, 42)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		bar := func(v float64) string {
			n := int(v * 40)
			s := ""
			for i := 0; i < n; i++ {
				s += "#"
			}
			return s
		}
		fmt.Printf("k=%d  w/o para %5.1f%% |%s\n", p.K, 100*p.CovBase, bar(p.CovBase))
		fmt.Printf("     para     %5.1f%% |%s\n", 100*p.CovPara, bar(p.CovPara))
	}

	// Breakdown for one fixed random training set of size k.
	r := rand.New(rand.NewSource(42))
	perm := r.Perm(len(corpus.Names))
	var train []string
	for _, i := range perm[:*k] {
		train = append(train, corpus.Names[i])
	}
	sort.Strings(train)
	fmt.Printf("\n== per-benchmark coverage, training on %v ==\n", train)

	union := corpus.Union(train)
	par, _ := core.Parameterize(union, core.Config{Opcode: true, AddrMode: true})
	inTrain := map[string]bool{}
	for _, n := range train {
		inTrain[n] = true
	}
	for _, n := range corpus.Names {
		if inTrain[n] {
			continue
		}
		base, err := corpus.Run(n, dbt.Config{Rules: union})
		if err != nil {
			log.Fatal(err)
		}
		full, err := corpus.Run(n, dbt.Config{Rules: par, DelegateFlags: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s w/o para %5.1f%%   para %5.1f%%\n", n,
			100*base.Stats.Coverage(), 100*full.Stats.Coverage())
	}
}

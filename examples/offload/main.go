// Offload: the paper's motivating scenario — a mobile (guest) binary
// offloaded to a server (host) and executed under the DBT. The example
// ships a "mobile" image-filter kernel, translates it on the "server"
// with leave-one-out rules, and compares the translated execution cost
// against pure emulation.
//
//	go run ./examples/offload
package main

import (
	"fmt"
	"log"

	"paramdbt/internal/core"
	"paramdbt/internal/dbt"
	"paramdbt/internal/env"
	"paramdbt/internal/exp"
	"paramdbt/internal/guest"
	"paramdbt/internal/mem"
	"paramdbt/internal/minic"
)

// filterKernel builds the "mobile app": a saturating blur over a byte
// buffer in the data segment, heavy on loads, stores, shifts and masks.
func filterKernel() *minic.Program {
	const (
		vBase = 1
		vI    = 2
		vAcc  = 3
		vTmp  = 4
	)
	body := []*minic.Stmt{
		minic.Assign(vBase, minic.C(int32(env.DataBase))),
		// Seed the buffer.
		minic.Assign(vI, minic.C(255)),
		minic.While(minic.Cond{Op: minic.CmpNe, L: minic.V(vI), R: minic.C(0)}, []*minic.Stmt{
			minic.StoreB(minic.B(minic.OpAdd, minic.V(vBase), minic.V(vI)),
				minic.B(minic.OpMul, minic.V(vI), minic.C(37))),
			minic.Assign(vI, minic.B(minic.OpSub, minic.V(vI), minic.C(1))),
		}),
		// Box blur: out[i] = (in[i-1] + 2*in[i] + in[i+1]) >> 2, clamped.
		minic.Assign(vI, minic.C(254)),
		minic.While(minic.Cond{Op: minic.CmpNe, L: minic.V(vI), R: minic.C(1)}, []*minic.Stmt{
			minic.Assign(vAcc, minic.LoadB(minic.B(minic.OpAdd, minic.V(vBase), minic.B(minic.OpSub, minic.V(vI), minic.C(1))))),
			minic.Assign(vTmp, minic.LoadB(minic.B(minic.OpAdd, minic.V(vBase), minic.V(vI)))),
			minic.Assign(vAcc, minic.B(minic.OpAdd, minic.V(vAcc), minic.B(minic.OpShl, minic.V(vTmp), minic.C(1)))),
			minic.Assign(vTmp, minic.LoadB(minic.B(minic.OpAdd, minic.V(vBase), minic.B(minic.OpAdd, minic.V(vI), minic.C(1))))),
			minic.Assign(vAcc, minic.B(minic.OpAdd, minic.V(vAcc), minic.V(vTmp))),
			minic.Assign(vAcc, minic.B(minic.OpShr, minic.V(vAcc), minic.C(2))),
			minic.Assign(vAcc, minic.B(minic.OpAnd, minic.V(vAcc), minic.C(255))),
			minic.StoreB(minic.B(minic.OpAdd, minic.B(minic.OpAdd, minic.V(vBase), minic.C(0)), minic.V(vI)), minic.V(vAcc)),
			minic.Assign(vI, minic.B(minic.OpSub, minic.V(vI), minic.C(1))),
		}),
		// Checksum.
		minic.Assign(0, minic.C(0)),
		minic.Assign(vI, minic.C(255)),
		minic.While(minic.Cond{Op: minic.CmpNe, L: minic.V(vI), R: minic.C(0)}, []*minic.Stmt{
			minic.Assign(vTmp, minic.LoadB(minic.B(minic.OpAdd, minic.V(vBase), minic.V(vI)))),
			minic.Assign(0, minic.B(minic.OpXor, minic.B(minic.OpAdd, minic.V(0), minic.V(vTmp)), minic.V(vI))),
			minic.Assign(vI, minic.B(minic.OpSub, minic.V(vI), minic.C(1))),
		}),
		minic.Return(minic.V(0)),
	}
	return &minic.Program{Funcs: []*minic.Func{{Name: "main", NVars: 5, Body: body}}}
}

func main() {
	fmt.Println("offload scenario: mobile guest binary -> server DBT")

	// The server's rule table was trained ahead of time on its corpus
	// (the 12 SPEC stand-ins) — the kernel itself was never seen.
	corpus, err := exp.BuildCorpus(1)
	if err != nil {
		log.Fatal(err)
	}
	union := corpus.Union(corpus.Names)
	par, counts := core.Parameterize(union, core.Config{Opcode: true, AddrMode: true})
	fmt.Printf("server rule table: %d learned -> %d applicable rules\n",
		counts.Learned, counts.Instantiated)

	comp, err := minic.Compile(filterKernel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mobile binary: %d guest instructions\n", len(comp.GuestInsts))

	// Reference result from the interpreter.
	ref, err := comp.RunInterp(50_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference checksum: %#x\n", ref.R[guest.R0])

	run := func(cfg dbt.Config, label string) uint64 {
		m := mem.New()
		if _, err := comp.LoadGuest(m); err != nil {
			log.Fatal(err)
		}
		e := dbt.New(m, cfg)
		init := &guest.State{Mem: m}
		init.R[guest.SP] = env.StackTop
		e.SetGuestState(init)
		st, err := e.Run(env.CodeBase, 100_000_000)
		if err != nil {
			log.Fatal(err)
		}
		got := e.GuestState().R[guest.R0]
		status := "OK"
		if got != ref.R[guest.R0] {
			status = "MISMATCH"
		}
		fmt.Printf("%-14s checksum=%#x [%s] coverage=%5.1f%% host-insts=%d\n",
			label, got, status, 100*st.Coverage(), e.CPU.Total())
		return e.CPU.Total()
	}

	qemu := run(dbt.Config{}, "emulation")
	para := run(dbt.Config{Rules: par, DelegateFlags: true}, "parameterized")
	fmt.Printf("offload speedup from parameterized rules: %.2fx\n",
		float64(qemu)/float64(para))
}

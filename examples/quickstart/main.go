// Quickstart: learn translation rules from one program, parameterize
// them, and run a second program under the DBT — the whole pipeline in
// one page.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"paramdbt/internal/core"
	"paramdbt/internal/dbt"
	"paramdbt/internal/env"
	"paramdbt/internal/guest"
	"paramdbt/internal/learn"
	"paramdbt/internal/mem"
	"paramdbt/internal/minic"
	"paramdbt/internal/rule"
)

func main() {
	// 1. A training program: its guest and host compilations are the
	//    learning material. It only uses add/sub.
	training := &minic.Program{Funcs: []*minic.Func{{
		Name: "main", NVars: 4,
		Body: []*minic.Stmt{
			minic.Assign(0, minic.C(0)),
			minic.Assign(1, minic.C(100)),
			minic.While(minic.Cond{Op: minic.CmpNe, L: minic.V(1), R: minic.C(0)}, []*minic.Stmt{
				minic.Assign(0, minic.B(minic.OpAdd, minic.V(0), minic.V(1))),
				minic.Assign(1, minic.B(minic.OpSub, minic.V(1), minic.C(1))),
			}),
			minic.Return(minic.V(0)),
		},
	}}}

	trained, err := minic.Compile(training)
	if err != nil {
		log.Fatal(err)
	}
	learned := rule.NewStore()
	stats := learn.FromCompiled(trained, learned)
	fmt.Printf("learned %d unique rules from %d statements (%d candidates)\n",
		stats.Unique, stats.Statements, stats.Candidates)

	// 2. Parameterize: the learned add rule now derives eor, orr, bic,
	//    shifts, other dependence shapes and immediate forms — every
	//    derivation re-verified symbolically.
	par, counts := core.Parameterize(learned, core.Config{Opcode: true, AddrMode: true})
	fmt.Printf("parameterized into %d applicable rules (%d derived, %d rejected)\n",
		counts.Instantiated, counts.Derived, counts.Rejected)

	// 3. A different program using operators the training never saw.
	workload := &minic.Program{Funcs: []*minic.Func{{
		Name: "main", NVars: 4,
		Body: []*minic.Stmt{
			minic.Assign(0, minic.C(0x5a)),
			minic.Assign(1, minic.C(64)),
			minic.While(minic.Cond{Op: minic.CmpNe, L: minic.V(1), R: minic.C(0)}, []*minic.Stmt{
				minic.Assign(0, minic.B(minic.OpXor, minic.V(0), minic.V(1))), // eor: never trained!
				minic.Assign(0, minic.B(minic.OpOr, minic.V(0), minic.C(3))),  // orr: never trained!
				minic.Assign(1, minic.B(minic.OpSub, minic.V(1), minic.C(1))),
			}),
			minic.Return(minic.V(0)),
		},
	}}}
	comp, err := minic.Compile(workload)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run it under the DBT with and without parameterization.
	run := func(cfg dbt.Config, label string) {
		m := mem.New()
		if _, err := comp.LoadGuest(m); err != nil {
			log.Fatal(err)
		}
		e := dbt.New(m, cfg)
		init := &guest.State{Mem: m}
		init.R[guest.SP] = env.StackTop
		e.SetGuestState(init)
		st, err := e.Run(env.CodeBase, 50_000_000)
		if err != nil {
			log.Fatal(err)
		}
		final := e.GuestState()
		fmt.Printf("%-12s result=%d coverage=%5.1f%% host-insts=%d\n",
			label, final.R[guest.R0], 100*st.Coverage(), e.CPU.Total())
	}
	run(dbt.Config{}, "qemu")
	run(dbt.Config{Rules: learned}, "learned")
	run(dbt.Config{Rules: par, DelegateFlags: true}, "parameterized")
}

// Rulestudio: an interactive look at single rules — the paper's Fig. 3
// and Fig. 7 examples reproduced live. It seeds the store with one
// learned add rule, shows what parameterization derives (eor without
// training, bic with auxiliary instructions, dependence-shape variants
// with the Fig. 8 staging move), and demonstrates the verifier rejecting
// an unsound derivation.
//
//	go run ./examples/rulestudio
package main

import (
	"fmt"

	"paramdbt/internal/core"
	"paramdbt/internal/guest"
	"paramdbt/internal/host"
	"paramdbt/internal/rule"
)

func main() {
	// The learned seed: add p0, p0, p1 => addl p1, p0 (Fig. 3, left box).
	seed := &rule.Template{
		Guest:  []rule.GPat{{Op: guest.ADD, Args: []rule.Arg{rule.RegArg(0), rule.RegArg(0), rule.RegArg(1)}}},
		Host:   []rule.HPat{{Op: host.ADDL, Dst: rule.RegArg(0), Src: rule.RegArg(1)}},
		Params: []rule.ParamKind{rule.PReg, rule.PReg},
		Origin: rule.OriginLearned,
	}
	if res, ok := rule.Verify(seed); !ok {
		panic("seed rule failed verification: " + res.Reason)
	}
	fmt.Println("learned seed rule:")
	fmt.Println("  ", seed)

	store := rule.NewStore()
	store.Add(seed)
	out, counts := core.Parameterize(store, core.Config{Opcode: true, AddrMode: true})
	fmt.Printf("\nparameterization derived %d rules (%d candidates rejected by the verifier)\n\n",
		counts.Derived, counts.Rejected)

	show := func(title string, match func(*rule.Template) bool) {
		fmt.Println(title)
		n := 0
		for _, t := range out.All() {
			if t.Origin != rule.OriginLearned && match(t) && n < 4 {
				fmt.Println("  ", t)
				n++
			}
		}
		fmt.Println()
	}
	show("the Fig. 3 derivation — eor from add, never trained:",
		func(t *rule.Template) bool { return t.Guest[0].Op == guest.EOR })
	show("the Fig. 7 derivation — bic needs auxiliary movl+notl:",
		func(t *rule.Template) bool { return t.Guest[0].Op == guest.BIC })
	show("the Fig. 8 derivation — new dependence shapes stage through a scratch register:",
		func(t *rule.Template) bool {
			return t.Guest[0].Op == guest.ADD && len(t.Host) > 1
		})

	// A deliberately unsound derivation: sub with swapped operands. The
	// verifier must refuse it (the paper's commutativity constraint).
	bad := &rule.Template{
		Guest: []rule.GPat{{Op: guest.SUB, Args: []rule.Arg{rule.RegArg(0), rule.RegArg(0), rule.RegArg(1)}}},
		Host: []rule.HPat{
			{Op: host.MOVL, Dst: rule.ScratchArg(0), Src: rule.RegArg(1)},
			{Op: host.SUBL, Dst: rule.ScratchArg(0), Src: rule.RegArg(0)},
			{Op: host.MOVL, Dst: rule.RegArg(0), Src: rule.ScratchArg(0)},
		},
		Params:   []rule.ParamKind{rule.PReg, rule.PReg},
		NScratch: 1,
	}
	res, ok := rule.Verify(bad)
	fmt.Printf("unsound swapped-sub candidate accepted? %v\n", ok)
	fmt.Printf("verifier's reason: %s\n", res.Reason)

	// Matching and instantiation: apply a derived rule to a concrete
	// guest instruction.
	insts := guest.MustAssemble("eor r3, r3, r7")
	tmpl, binding, n := out.Lookup(insts)
	if tmpl == nil {
		panic("no rule for eor r3, r3, r7")
	}
	fmt.Printf("\nguest %q matches (%d insts): %s\n", insts[0], n, tmpl)
	regOf := func(r guest.Reg) (host.Reg, bool) {
		switch r {
		case guest.R3:
			return host.EBX, true
		case guest.R7:
			return host.ESI, true
		}
		return 0, false
	}
	hseq, err := rule.Instantiate(tmpl, binding, regOf, []host.Reg{host.EAX})
	if err != nil {
		panic(err)
	}
	fmt.Println("instantiated host code (r3->ebx, r7->esi):")
	for _, in := range hseq {
		fmt.Println("  ", in)
	}
}

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section, plus the ablation benches DESIGN.md calls
// out and micro-benchmarks of the pipeline's hot components. Run with
//
//	go test -bench=. -benchmem
//
// Each paper-level bench regenerates its table/figure end to end and
// reports the headline metric via b.ReportMetric, so the bench output
// doubles as the reproduction record (see EXPERIMENTS.md).
package paramdbt_test

import (
	"sync"
	"testing"
	"time"

	"paramdbt/internal/backend"
	"paramdbt/internal/core"
	"paramdbt/internal/dbt"
	"paramdbt/internal/env"
	"paramdbt/internal/exp"
	"paramdbt/internal/guest"
	"paramdbt/internal/host"
	"paramdbt/internal/mem"
	"paramdbt/internal/obs"
	"paramdbt/internal/rule"
	"paramdbt/internal/tcg"
	"paramdbt/internal/workload"
)

var (
	corpusOnce sync.Once
	corpus     *exp.Corpus
	looOnce    sync.Once
	loo        []exp.ModeResults
)

func getCorpus(b *testing.B) *exp.Corpus {
	b.Helper()
	corpusOnce.Do(func() {
		c, err := exp.BuildCorpus(1)
		if err != nil {
			b.Fatal(err)
		}
		corpus = c
	})
	return corpus
}

func getLOO(b *testing.B) []exp.ModeResults {
	b.Helper()
	c := getCorpus(b)
	looOnce.Do(func() {
		rs, err := exp.LeaveOneOut(c)
		if err != nil {
			b.Fatal(err)
		}
		loo = rs
	})
	return loo
}

// BenchmarkTable1LearningFunnel regenerates Table I: the full
// compile-and-learn pipeline over the 12 benchmarks.
func BenchmarkTable1LearningFunnel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := exp.BuildCorpus(1)
		if err != nil {
			b.Fatal(err)
		}
		rows := exp.Table1(c)
		var stmts, unique int
		for _, r := range rows {
			stmts += r.Statements
			unique += r.Unique
		}
		b.ReportMetric(float64(unique)/float64(stmts)*100, "%unique-of-stmts")
	}
}

// BenchmarkFig2RuleGrowth regenerates the rule-growth curve.
func BenchmarkFig2RuleGrowth(b *testing.B) {
	c := getCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := exp.Fig2(c, 1)
		b.ReportMetric(float64(points[len(points)-1].Rules), "rules-at-12")
	}
}

// BenchmarkFig11Speedup regenerates the headline speedup figure.
func BenchmarkFig11Speedup(b *testing.B) {
	rs := getLOO(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var overQ, overBase []float64
		for _, r := range rs {
			overQ = append(overQ, exp.Speedup(r.QEMU, r.Flags))
			overBase = append(overBase, exp.Speedup(r.Base, r.Flags))
		}
		b.ReportMetric(exp.Geomean(overQ), "speedup-vs-qemu")
		b.ReportMetric(exp.Geomean(overBase), "speedup-vs-baseline")
	}
}

// BenchmarkFig12Coverage regenerates the coverage figure.
func BenchmarkFig12Coverage(b *testing.B) {
	rs := getLOO(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var base, para []float64
		for _, r := range rs {
			base = append(base, r.Base.Stats.Coverage())
			para = append(para, r.Flags.Stats.Coverage())
		}
		b.ReportMetric(100*exp.Geomean(base), "%cov-w/o-para")
		b.ReportMetric(100*exp.Geomean(para), "%cov-para")
	}
}

// BenchmarkFig13Expansion regenerates the host-per-guest instruction
// ratios.
func BenchmarkFig13Expansion(b *testing.B) {
	rs := getLOO(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var q, p []float64
		for _, r := range rs {
			q = append(q, float64(r.QEMU.Total)/float64(r.QEMU.Stats.GuestExec))
			p = append(p, float64(r.Flags.Total)/float64(r.Flags.Stats.GuestExec))
		}
		b.ReportMetric(exp.Geomean(q), "host/guest-qemu")
		b.ReportMetric(exp.Geomean(p), "host/guest-para")
	}
}

// BenchmarkTable2Breakdown regenerates the per-category breakdown.
func BenchmarkTable2Breakdown(b *testing.B) {
	rs := getLOO(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := exp.Table2(rs)
		var rt, dt, cc float64
		for _, r := range rows {
			rt += r.RuleTranslated
			dt += r.DataTransfer
			cc += r.ControlCode
		}
		n := float64(len(rows))
		b.ReportMetric(rt/n, "rule-translated")
		b.ReportMetric(dt/n, "data-transfer")
		b.ReportMetric(cc/n, "control-code")
	}
}

// BenchmarkFig14CoverageAblation regenerates the per-factor coverage.
func BenchmarkFig14CoverageAblation(b *testing.B) {
	rs := getLOO(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var base, op, md, fl []float64
		for _, r := range rs {
			base = append(base, r.Base.Stats.Coverage())
			op = append(op, r.Op.Stats.Coverage())
			md = append(md, r.Mode.Stats.Coverage())
			fl = append(fl, r.Flags.Stats.Coverage())
		}
		b.ReportMetric(100*exp.Geomean(base), "%w/o")
		b.ReportMetric(100*exp.Geomean(op), "%opcode")
		b.ReportMetric(100*exp.Geomean(md), "%addrmode")
		b.ReportMetric(100*exp.Geomean(fl), "%condition")
	}
}

// BenchmarkFig15SpeedupAblation regenerates the per-factor speedups.
func BenchmarkFig15SpeedupAblation(b *testing.B) {
	rs := getLOO(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var base, op, md, fl []float64
		for _, r := range rs {
			base = append(base, exp.Speedup(r.QEMU, r.Base))
			op = append(op, exp.Speedup(r.QEMU, r.Op))
			md = append(md, exp.Speedup(r.QEMU, r.Mode))
			fl = append(fl, exp.Speedup(r.QEMU, r.Flags))
		}
		b.ReportMetric(exp.Geomean(base), "x-w/o")
		b.ReportMetric(exp.Geomean(op), "x-opcode")
		b.ReportMetric(exp.Geomean(md), "x-addrmode")
		b.ReportMetric(exp.Geomean(fl), "x-condition")
	}
}

// BenchmarkFig16TrainingSets regenerates the training-set-size sweep
// (reduced repeats keep the bench under a minute).
func BenchmarkFig16TrainingSets(b *testing.B) {
	c := getCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := exp.Fig16(c, 8, 2, 7)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(100*last.CovBase, "%cov-w/o-k8")
		b.ReportMetric(100*last.CovPara, "%cov-para-k8")
	}
}

// BenchmarkTable3RuleCounts regenerates the rule accounting.
func BenchmarkTable3RuleCounts(b *testing.B) {
	c := getCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := exp.Table3(c)
		b.ReportMetric(float64(counts.Learned), "learned")
		b.ReportMetric(float64(counts.AddrModeParam), "parameterized")
		b.ReportMetric(float64(counts.Instantiated), "instantiated")
	}
}

// ---- ablation benches (design choices from DESIGN.md) ----

// BenchmarkAblationFlagWindow varies the delegation kill window the
// paper fixes at 3.
func BenchmarkAblationFlagWindow(b *testing.B) {
	c := getCorpus(b)
	union := c.Union(c.Others("gcc"))
	full, _ := core.Parameterize(union, core.Config{Opcode: true, AddrMode: true})
	for _, w := range []int{-1, 1, 3, 8} {
		name := map[int]string{-1: "w0", 1: "w1", 3: "w3", 8: "w8"}[w]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := c.Run("gcc", dbt.Config{Rules: full, DelegateFlags: true, FlagWindow: w})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*r.Stats.Coverage(), "%coverage")
				b.ReportMetric(float64(r.Total)/float64(r.Stats.GuestExec), "host/guest")
			}
		})
	}
}

// BenchmarkAblationSeqRules compares full rule tables against tables
// with the multi-instruction (sequence and branch-tail) rules removed —
// the paper's §V-D discussion of parameterizing only single-instruction
// rules.
func BenchmarkAblationSeqRules(b *testing.B) {
	c := getCorpus(b)
	union := c.Union(c.Others("perlbench"))
	full, _ := core.Parameterize(union, core.Config{Opcode: true, AddrMode: true})
	single := rule.NewStore()
	for _, t := range full.All() {
		if t.GuestLen() == 1 {
			cp := *t
			single.Add(&cp)
		}
	}
	run := func(b *testing.B, s *rule.Store) {
		for i := 0; i < b.N; i++ {
			r, err := c.Run("perlbench", dbt.Config{Rules: s, DelegateFlags: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*r.Stats.Coverage(), "%coverage")
			b.ReportMetric(float64(r.Total)/float64(r.Stats.GuestExec), "host/guest")
		}
	}
	seqPar, _ := core.Parameterize(union, core.Config{Opcode: true, AddrMode: true, Sequences: true})
	b.Run("with-seq-rules", func(b *testing.B) { run(b, full) })
	b.Run("single-only", func(b *testing.B) { run(b, single) })
	// The paper's §V-D future work: sequence rules themselves
	// parameterized along the opcode dimension.
	b.Run("seq-parameterized", func(b *testing.B) { run(b, seqPar) })
}

// BenchmarkAblationRegAlloc toggles per-block guest-register allocation,
// quantifying the data-transfer overhead Table II discusses.
func BenchmarkAblationRegAlloc(b *testing.B) {
	c := getCorpus(b)
	union := c.Union(c.Others("mcf"))
	full, _ := core.Parameterize(union, core.Config{Opcode: true, AddrMode: true})
	for _, noAlloc := range []bool{false, true} {
		name := "block-regalloc"
		if noAlloc {
			name = "state-resident"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := c.Run("mcf", dbt.Config{Rules: full, DelegateFlags: true, NoBlockRegAlloc: noAlloc})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.Executed[1])/float64(r.Stats.GuestExec), "data-transfer")
				b.ReportMetric(float64(r.Total)/float64(r.Stats.GuestExec), "host/guest")
			}
		})
	}
}

// ---- micro-benchmarks of the pipeline's hot paths ----

// BenchmarkHostCPUExec measures the host simulator's raw throughput.
func BenchmarkHostCPUExec(b *testing.B) {
	const lbl = 1
	insts := []host.Inst{
		host.I(host.MOVL, host.R(host.EAX), host.Imm(0)),
		host.I(host.MOVL, host.R(host.ECX), host.Imm(1000)),
		host.I(host.ADDL, host.R(host.EAX), host.R(host.ECX)),
		host.I(host.SUBL, host.R(host.ECX), host.Imm(1)),
		host.Jcc(host.NE, lbl),
		host.Exit(host.Imm(0)),
	}
	blk := host.NewBlock(insts, map[int]int{lbl: 2})
	cpu := host.NewCPU(mem.New())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Exec(blk, 1e9); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cpu.Total())/float64(b.N), "host-insts/op")
}

// BenchmarkRuleLookup measures rule-table retrieval (the runtime hash
// lookup of §IV-D).
func BenchmarkRuleLookup(b *testing.B) {
	c := getCorpus(b)
	full, _ := core.Parameterize(c.Union(c.Names), core.Config{Opcode: true, AddrMode: true})
	seq := guest.MustAssemble("eor r3, r4, r5\nhlt")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t, _, _ := full.Lookup(seq); t == nil {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkLookupKey measures the allocation-free retrieval-key paths:
// fingerprint computation over a block-sized window, a memoized-miss
// lookup, and a hit lookup. The key and miss paths must report
// 0 allocs/op — retrieval runs once per window position per block.
func BenchmarkLookupKey(b *testing.B) {
	c := getCorpus(b)
	full, _ := core.Parameterize(c.Union(c.Names), core.Config{Opcode: true, AddrMode: true})
	hit := guest.MustAssemble("eor r3, r4, r5\nhlt")
	missSeq := guest.MustAssemble("hlt")
	if t, _, _ := full.Lookup(missSeq); t != nil {
		b.Fatal("miss sequence unexpectedly matched a rule")
	}
	block := guest.MustAssemble(`
		ldr r1, [sp, #4]
		add r2, r1, #1
		eor r3, r2, r1
		str r3, [sp, #8]
		cmp r3, r1
		beq done
		sub r4, r3, r2
		orr r5, r4, r1
		done: hlt
	`)

	b.Run("fingerprint", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			h := rule.KeyFpSeed
			for j := range block {
				h = rule.ExtendKeyFp(h, block[j])
			}
			sink ^= h
		}
		_ = sink
	})
	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		var miss rule.MissSet
		miss.Reset()
		var bind rule.Binding
		full.LookupInto(hit, &miss, nil, &bind) // warm the scratch binding
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if t, _ := full.LookupInto(hit, &miss, nil, &bind); t == nil {
				b.Fatal("lookup failed")
			}
		}
	})
	b.Run("miss-memoized", func(b *testing.B) {
		b.ReportAllocs()
		var miss rule.MissSet
		miss.Reset()
		full.LookupCached(missSeq, &miss) // pre-populate the memo
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if t, _, _ := full.LookupCached(missSeq, &miss); t != nil {
				b.Fatal("miss sequence matched")
			}
		}
	})
}

// BenchmarkDispatchChaining compares dispatcher traffic with and
// without translation-block chaining on the largest benchmark, and
// checks that chaining changes nothing guest-visible. The third
// sub-bench adds background translation workers on top of chaining.
func BenchmarkDispatchChaining(b *testing.B) {
	c := getCorpus(b)
	full, _ := core.Parameterize(c.Union(c.Others("gcc")), core.Config{Opcode: true, AddrMode: true})
	base := dbt.Config{Rules: full, DelegateFlags: true}
	ref, err := c.Run("gcc", base)
	if err != nil {
		b.Fatal(err)
	}
	if ref.Stats.ChainedExits == 0 {
		b.Fatal("reference run recorded no chained exits")
	}
	for _, bc := range []struct {
		name string
		cfg  dbt.Config
	}{
		{"chained", base},
		{"no-chain", func() dbt.Config { c := base; c.NoChain = true; return c }()},
		{"chained-workers4", func() dbt.Config { c := base; c.TranslateWorkers = 4; return c }()},
		{"superblocks", func() dbt.Config {
			c := base
			c.HotThreshold = 4
			// A low threshold forms traces early (maximum remaining run to
			// amortize them) and the budget keeps the long tail of
			// barely-hot heads from paying translation they never earn
			// back.
			c.TraceBudget = 12
			// One dispatch goroutine per CPU on the bench box: background
			// formation cannot be scheduled inside a ~16ms op on a single
			// core, so the bench measures the synchronous path.
			c.SyncTraces = true
			return c
		}()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := c.Run("gcc", bc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				// Superblock runs retire fewer HOST instructions (that is
				// the optimization: seam epilogues/prologues and dead flag
				// stores disappear), so Total is compared one-sided there,
				// and coverage may shift within a small tolerance — the
				// trace-wide register mapping changes which rule windows'
				// operand staging fits the temp pool. Everything
				// guest-visible must still be identical.
				if r.Stats.GuestExec != ref.Stats.GuestExec || r.R0 != ref.R0 {
					b.Fatalf("guest-visible results diverge from reference: %+v vs %+v",
						r.Stats, ref.Stats)
				}
				if bc.cfg.HotThreshold > 0 {
					b.ReportMetric(float64(r.Stats.TracesFormed), "traces")
					if r.Stats.TracesFormed == 0 || r.Stats.SuperblockExecs == 0 {
						b.Fatalf("no superblocks formed on the gcc workload: %+v", r.Stats)
					}
					if d := r.Stats.Coverage() - ref.Stats.Coverage(); d < -0.01 || d > 0.01 {
						b.Fatalf("superblock coverage drifted: %.4f vs %.4f",
							r.Stats.Coverage(), ref.Stats.Coverage())
					}
					if r.Total >= ref.Total {
						b.Fatalf("superblocks did not reduce host instructions: %d vs %d",
							r.Total, ref.Total)
					}
					b.ReportMetric(100*r.Stats.SuperblockShare(), "%superblock")
					b.ReportMetric(100*r.Stats.SideExitRate(), "%side-exit")
				} else {
					if r.Stats.Coverage() != ref.Stats.Coverage() {
						b.Fatalf("coverage diverges from reference: %+v vs %+v", r.Stats, ref.Stats)
					}
					if r.Total != ref.Total {
						b.Fatalf("host instruction count diverges from reference: %d vs %d",
							r.Total, ref.Total)
					}
				}
				if !bc.cfg.NoChain && r.Stats.ChainedExits == 0 {
					b.Fatal("no chained exits in a chained configuration")
				}
				b.ReportMetric(float64(r.Stats.Dispatches), "dispatches")
				b.ReportMetric(float64(r.Stats.ChainedExits), "chained-exits")
				b.ReportMetric(100*r.Stats.ChainRate(), "%chained")
			}
		})
	}
}

// BenchmarkBackendDispatch is the cross-backend twin of
// BenchmarkDispatchChaining: the same chained gcc workload, once per
// registered host backend, with each backend getting its own freshly
// parameterized store (engines rekey the store's retrieval index to
// their backend's fingerprint namespace, so sharing one store across
// backends would measure rekeying, not execution). Raw output is
// recorded in BENCH_backend.json.
func BenchmarkBackendDispatch(b *testing.B) {
	c := getCorpus(b)
	for _, name := range backend.Names() {
		be := backend.MustLookup(name)
		b.Run(name, func(b *testing.B) {
			full, _ := core.Parameterize(c.Union(c.Others("gcc")), core.Config{Opcode: true, AddrMode: true})
			cfg := dbt.Config{Rules: full, DelegateFlags: true, Backend: be}
			for i := 0; i < b.N; i++ {
				r, err := c.Run("gcc", cfg)
				if err != nil {
					b.Fatal(err)
				}
				if r.Stats.ChainedExits == 0 {
					b.Fatal("no chained exits")
				}
				b.ReportMetric(float64(r.Stats.GuestExec), "guest-insts")
				b.ReportMetric(float64(r.Total)/float64(r.Stats.GuestExec), "host-per-guest")
				b.ReportMetric(100*r.Stats.ChainRate(), "%chained")
			}
		})
	}
}

// BenchmarkBackendWorkload runs the guest-loop workloads end to end
// under each backend, pinning the relative cost of the RISC legalizer's
// load/store expansion on real translated code.
func BenchmarkBackendWorkload(b *testing.B) {
	c := getCorpus(b)
	for _, bench := range []string{"mcf", "bzip2"} {
		for _, name := range backend.Names() {
			be := backend.MustLookup(name)
			b.Run(bench+"/"+name, func(b *testing.B) {
				full, _ := core.Parameterize(c.Union(c.Others(bench)), core.Config{Opcode: true, AddrMode: true})
				cfg := dbt.Config{Rules: full, DelegateFlags: true, Backend: be}
				for i := 0; i < b.N; i++ {
					r, err := c.Run(bench, cfg)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(r.Total)/float64(r.Stats.GuestExec), "host-per-guest")
					b.ReportMetric(100*r.Stats.Coverage(), "%coverage")
				}
			})
		}
	}
}

// BenchmarkWarmstart measures what warm-start persistence buys: the
// same workload run cold (a fresh artifact store each op — every block
// demand-translated, then published) versus warm (a store populated
// once up front — the code cache and traces restored before dispatch).
// Both arms report their demand-translation count; `make bench-warmstart`
// records the two arms in BENCH_warmstart.json, and the benchtrace
// -check-warmstart gate fails unless warm stays strictly below cold.
func BenchmarkWarmstart(b *testing.B) {
	c := getCorpus(b)
	const bench = "gcc"
	full, _ := core.Parameterize(c.Union(c.Others(bench)), core.Config{Opcode: true, AddrMode: true})
	cfg := func(dir string) dbt.Config {
		return dbt.Config{Rules: full, DelegateFlags: true, HotThreshold: 16, SyncTraces: true, ArtifactDir: dir}
	}
	b.Run("cold", func(b *testing.B) {
		var tx float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir() // nothing to restore: every op pays full translation
			b.StartTimer()
			r, err := c.Run(bench, cfg(dir))
			if err != nil {
				b.Fatal(err)
			}
			if r.Stats.Translations == 0 {
				b.Fatal("cold run demand-translated nothing")
			}
			tx += float64(r.Stats.Translations)
		}
		b.ReportMetric(tx/float64(b.N), "translations")
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		if _, err := c.Run(bench, cfg(dir)); err != nil { // populate the store
			b.Fatal(err)
		}
		b.ResetTimer()
		var tx, restored float64
		for i := 0; i < b.N; i++ {
			r, err := c.Run(bench, cfg(dir))
			if err != nil {
				b.Fatal(err)
			}
			if r.Warm.Blocks == 0 {
				b.Fatalf("warm run restored nothing: %+v", r.Warm)
			}
			tx += float64(r.Stats.Translations)
			restored += float64(r.Warm.Blocks)
		}
		b.ReportMetric(tx/float64(b.N), "translations")
		b.ReportMetric(restored/float64(b.N), "restored-blocks")
	})
}

// BenchmarkSMC prices the self-modifying-code safety layer. The
// "tracked" and "untracked" arms run the exact superblock configuration
// of BenchmarkDispatchChaining/superblocks on a guest that never writes
// code — their gap is the write tracker's pure overhead (page lookups
// on stores plus the fence check per dispatch), which `make bench-smc-check`
// gates at 2% against the recorded superblock arm in BENCH_trace.json.
// The "smc-heavy" arm runs the hostile smc-async workload (an
// instruction toggled every four iterations under asynchronous trace
// formation) and reports what each hazard costs in invalidations and
// aborted executions.
func BenchmarkSMC(b *testing.B) {
	c := getCorpus(b)
	full, _ := core.Parameterize(c.Union(c.Others("gcc")), core.Config{Opcode: true, AddrMode: true})
	sbCfg := dbt.Config{
		Rules: full, DelegateFlags: true,
		HotThreshold: 4, TraceBudget: 12, SyncTraces: true,
	}
	for _, bc := range []struct {
		name string
		cfg  dbt.Config
	}{
		{"tracked", sbCfg},
		{"untracked", func() dbt.Config { c := sbCfg; c.NoWriteTrack = true; return c }()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := c.Run("gcc", bc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if r.Stats.SMCInvalidations != 0 || r.Stats.SMCSelfAborts != 0 {
					b.Fatalf("non-modifying workload tripped SMC machinery: %+v", r.Stats)
				}
				b.ReportMetric(float64(r.Stats.GuestExec), "guest-insts")
			}
		})
	}
	b.Run("smc-heavy", func(b *testing.B) {
		var p workload.SMCProfile
		for _, q := range workload.SMCProfiles() {
			if q.Name == "smc-async" {
				p = q
			}
		}
		for i := 0; i < b.N; i++ {
			m := mem.New()
			if err := guest.LoadProgram(m, env.CodeBase, p.Prog); err != nil {
				b.Fatal(err)
			}
			e := dbt.New(m, dbt.Config{Rules: full, DelegateFlags: true, HotThreshold: p.HotThreshold})
			e.SetGuestState(&guest.State{Mem: m})
			st, err := e.Run(env.CodeBase, 1<<30)
			if err != nil {
				b.Fatal(err)
			}
			if st.SMCInvalidations == 0 {
				b.Fatalf("smc-async tripped no invalidations: %+v", st)
			}
			b.ReportMetric(float64(st.SMCInvalidations), "invalidations")
			b.ReportMetric(float64(st.SMCSelfAborts), "self-aborts")
		}
	})
}

// BenchmarkPeephole measures what the validator-licensed peephole pass
// buys back of the risc legalizer's +6.7% host-instruction overhead
// (the BENCH_backend.json note on BenchmarkBackendDispatch/risc). Three
// arms on the same chained gcc workload: risc as lowered, risc with
// Config.Peephole (every optimized stream proved by the translation
// validator before install — see docs/ANALYSIS.md), and the x86
// baseline the overhead is measured against. The headline metric is
// host-insts/guest-inst, which is deterministic — `make bench-peephole`
// records the arms in BENCH_peephole.json and the benchtrace
// -check-peephole gate fails unless the optimized risc ratio drops
// below the +6.7% line.
func BenchmarkPeephole(b *testing.B) {
	c := getCorpus(b)
	for _, bc := range []struct {
		name     string
		backend  string
		peephole bool
	}{
		{"risc-base", "risc", false},
		{"risc-peephole", "risc", true},
		{"x86", "x86", false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			full, _ := core.Parameterize(c.Union(c.Others("gcc")), core.Config{Opcode: true, AddrMode: true})
			cfg := dbt.Config{Rules: full, DelegateFlags: true,
				Backend: backend.MustLookup(bc.backend), Peephole: bc.peephole}
			for i := 0; i < b.N; i++ {
				r, err := c.Run("gcc", cfg)
				if err != nil {
					b.Fatal(err)
				}
				if bc.peephole && r.Stats.BlocksValidated == 0 {
					b.Fatal("peephole arm proved and installed no optimized stream")
				}
				b.ReportMetric(float64(r.Total)/float64(r.Stats.GuestExec), "host-per-guest")
				if bc.peephole {
					b.ReportMetric(float64(r.Stats.BlocksValidated), "validated")
				}
			}
		})
	}
}

// BenchmarkObsDisabledOverhead pins the observability layer's core
// invariant: with telemetry disabled (the default), an instrumented hot
// path pays one atomic load and allocates nothing. "guard" is the exact
// sequence the dispatcher runs per iteration when obs is off; "product"
// is the always-on atomic counter backing dbt.Stats. Both must report
// 0 allocs/op, and the guard must stay within ~2 ns/op.
func BenchmarkObsDisabledOverhead(b *testing.B) {
	obs.SetEnabled(false)
	reg := obs.NewRegistry()
	hist := reg.Histogram("bench.telemetry_ns")
	ctr := reg.Counter("bench.product")

	b.Run("guard", func(b *testing.B) {
		b.ReportAllocs()
		taken := 0
		for i := 0; i < b.N; i++ {
			if obs.On() {
				t0 := time.Now()
				taken++
				hist.ObserveSince(t0)
			}
		}
		if taken != 0 {
			b.Fatal("telemetry branch taken while disabled")
		}
	})
	b.Run("product", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctr.Inc()
		}
		if ctr.Value() == 0 {
			b.Fatal("counter did not count")
		}
	})
	b.Run("enabled-histogram", func(b *testing.B) {
		obs.SetEnabled(true)
		defer obs.SetEnabled(false)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if obs.On() {
				t0 := time.Now()
				hist.ObserveSince(t0)
			}
		}
	})
}

// BenchmarkVerifyRule measures one symbolic rule verification.
func BenchmarkVerifyRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := &rule.Template{
			Guest:  []rule.GPat{{Op: guest.ADD, Args: []rule.Arg{rule.RegArg(0), rule.RegArg(0), rule.RegArg(1)}}},
			Host:   []rule.HPat{{Op: host.ADDL, Dst: rule.RegArg(0), Src: rule.RegArg(1)}},
			Params: []rule.ParamKind{rule.PReg, rule.PReg},
		}
		if _, ok := rule.Verify(t); !ok {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkTCGLowering measures the emulation path's per-instruction
// translation cost.
func BenchmarkTCGLowering(b *testing.B) {
	in := guest.MustAssemble("adds r0, r1, r2")[0]
	pool := []host.Reg{host.EAX, host.ECX, host.EDX}
	mapf := func(r guest.Reg) host.Operand {
		return host.Mem(host.EBP, int32(4*int(r)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := host.NewAsm()
		g := tcg.NewGen(a.NewLabel)
		if err := g.Translate(in, 0x1000); err != nil {
			b.Fatal(err)
		}
		if err := tcg.Lower(a, g, mapf, pool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParameterize measures the full derivation pass.
func BenchmarkParameterize(b *testing.B) {
	c := getCorpus(b)
	union := c.Union(c.Names)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, counts := core.Parameterize(union, core.Config{Opcode: true, AddrMode: true}); counts.Derived == 0 {
			b.Fatal("nothing derived")
		}
	}
}

// BenchmarkEndToEndMCF measures one complete translate-and-run of the
// smallest benchmark under the full system.
func BenchmarkEndToEndMCF(b *testing.B) {
	c := getCorpus(b)
	full, _ := core.Parameterize(c.Union(c.Others("mcf")), core.Config{Opcode: true, AddrMode: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.Run("mcf", dbt.Config{Rules: full, DelegateFlags: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Stats.GuestExec), "guest-insts")
	}
}

// Command linkcheck verifies documentation cross-references so the
// Makefile ci target fails on dead links instead of shipping them:
//
//   - every relative markdown link [text](path) must point at an
//     existing file or directory (http/https/mailto and pure #anchor
//     links are skipped; #fragments on file links are stripped);
//   - every [[path:line]] source reference must name an existing file
//     with at least that many lines.
//
// Paths are resolved relative to the markdown file containing them.
// With no arguments it checks every *.md in the repository root and in
// docs/; explicit file arguments override the default set.
//
//	go run ./cmd/linkcheck
//	go run ./cmd/linkcheck docs/ARCHITECTURE.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// linkRe matches inline markdown links; images ![alt](src) also match
// (the leading ! is irrelevant for target checking).
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// srcRefRe matches [[path:line]] source references.
var srcRefRe = regexp.MustCompile(`\[\[([^\]:[]+):(\d+)\]\]`)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		for _, pat := range []string{"*.md", "docs/*.md"} {
			m, err := filepath.Glob(pat)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			files = append(files, m...)
		}
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "linkcheck: no markdown files found")
		os.Exit(1)
	}

	bad := 0
	report := func(file string, line int, msg string) {
		fmt.Fprintf(os.Stderr, "%s:%d: %s\n", file, line, msg)
		bad++
	}
	checked := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dir := filepath.Dir(f)
		for i, ln := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(ln, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
					strings.HasPrefix(target, "#") {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				checked++
				if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
					report(f, i+1, fmt.Sprintf("broken link %q", m[1]))
				}
			}
			for _, m := range srcRefRe.FindAllStringSubmatch(ln, -1) {
				target := m[1]
				want, _ := strconv.Atoi(m[2])
				checked++
				src, err := os.ReadFile(filepath.Join(dir, target))
				if err != nil {
					report(f, i+1, fmt.Sprintf("broken source ref [[%s:%d]]: no such file", target, want))
					continue
				}
				if lines := strings.Count(string(src), "\n") + 1; lines < want {
					report(f, i+1, fmt.Sprintf("broken source ref [[%s:%d]]: file has %d lines", target, want, lines))
				}
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken reference(s)\n", bad)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d reference(s) ok across %d file(s)\n", checked, len(files))
}

// Command codeaudit runs translation validation over every block the
// workload suite translates: each benchmark executes under the engine
// with Config.Validate="all", and every finalized host block (and
// superblock) is symbolically checked against the guest reference
// semantics by internal/analysis.ValidateBlock. The result is one JSON
// report with a verdict per block:
//
//	proved        every execution-path pair decided equivalent (the
//	              report names the proof: structural, abstract, sweep)
//	inconclusive  not provable by the symbolic layer; the engine keeps
//	              the stream but it stays under shadow verification
//	refuted       a replay-confirmed divergence — translator bug; the
//	              report carries the concrete witness
//
//	go run ./cmd/codeaudit                  # audit, JSON to stdout
//	go run ./cmd/codeaudit -o blocks.json   # write to a file
//	go run ./cmd/codeaudit -summary         # verdict counts only (text)
//	go run ./cmd/codeaudit -backend risc    # audit the risc legalizer
//	go run ./cmd/codeaudit -peephole        # audit optimized streams too
//	go run ./cmd/codeaudit -fail-refuted    # exit 2 on any refutation
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"paramdbt/internal/analysis"
	"paramdbt/internal/backend"
	"paramdbt/internal/core"
	"paramdbt/internal/dbt"
	"paramdbt/internal/exp"
)

// report is the JSON document codeaudit emits.
type report struct {
	Backend      string         `json:"backend"`
	Scale        int            `json:"scale"`
	Blocks       int            `json:"blocks"`
	Proved       int            `json:"proved"`
	Inconclusive int            `json:"inconclusive"`
	Refuted      int            `json:"refuted"`
	ByProof      map[string]int `json:"by_proof,omitempty"`
	Benches      []benchBlocks  `json:"benches"`
}

type benchBlocks struct {
	Bench  string                  `json:"bench"`
	Blocks []*analysis.BlockReport `json:"blocks"`
}

func main() {
	scale := flag.Int("scale", 1, "workload scale (1 = reference input)")
	out := flag.String("o", "", "write the JSON report to this file instead of stdout")
	summary := flag.Bool("summary", false, "print verdict counts as text instead of the JSON report")
	peephole := flag.Bool("peephole", false, "also run the validator-licensed peephole pass (its candidate streams are audited too)")
	failRefuted := flag.Bool("fail-refuted", false, "exit with status 2 when any block validation is refuted")
	beName := flag.String("backend", "", "host backend to audit under (default: $"+backend.EnvVar+" or x86)")
	flag.Parse()

	be := backend.Default()
	if *beName != "" {
		var err error
		be, err = backend.Lookup(*beName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codeaudit:", err)
			os.Exit(1)
		}
	}

	corpus, err := exp.BuildCorpus(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codeaudit: corpus:", err)
		os.Exit(1)
	}
	full, _ := core.Parameterize(corpus.Union(corpus.Names), core.Config{Opcode: true, AddrMode: true})

	rep := report{Backend: be.Name(), Scale: *scale, ByProof: map[string]int{}}
	for _, bench := range corpus.Names {
		bb := benchBlocks{Bench: bench}
		cfg := dbt.Config{
			Rules:         full,
			DelegateFlags: true,
			Backend:       be,
			Validate:      "all",
			Peephole:      *peephole,
			ValidateHook: func(r *analysis.BlockReport) {
				bb.Blocks = append(bb.Blocks, r)
				switch r.Verdict {
				case analysis.VerdictProved:
					rep.Proved++
					rep.ByProof[string(r.Proof)]++
				case analysis.VerdictRefuted:
					rep.Refuted++
				default:
					rep.Inconclusive++
				}
			},
		}
		if _, err := corpus.Run(bench, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "codeaudit: %s: %v\n", bench, err)
			os.Exit(1)
		}
		rep.Blocks += len(bb.Blocks)
		rep.Benches = append(rep.Benches, bb)
	}
	fmt.Fprintf(os.Stderr, "codeaudit: backend %s: %d validations: %d proved, %d inconclusive, %d refuted\n",
		rep.Backend, rep.Blocks, rep.Proved, rep.Inconclusive, rep.Refuted)

	if *summary {
		fmt.Printf("blocks       %d\n", rep.Blocks)
		fmt.Printf("proved       %d\n", rep.Proved)
		for _, p := range []analysis.Proof{analysis.ProofStructural, analysis.ProofAbstract, analysis.ProofSweep} {
			if n := rep.ByProof[string(p)]; n > 0 {
				fmt.Printf("  by %-10s %d\n", p, n)
			}
		}
		fmt.Printf("inconclusive %d\n", rep.Inconclusive)
		for _, bb := range rep.Benches {
			for _, r := range bb.Blocks {
				if r.Verdict != analysis.VerdictProved && r.Verdict != analysis.VerdictRefuted {
					fmt.Printf("  %s pc=%#x: %s\n", bb.Bench, r.PC, r.Reason)
				}
			}
		}
		fmt.Printf("refuted      %d\n", rep.Refuted)
		for _, bb := range rep.Benches {
			for _, r := range bb.Blocks {
				if r.Verdict == analysis.VerdictRefuted {
					fmt.Printf("  %s pc=%#x: %s (witness %s)\n", bb.Bench, r.PC, r.Reason, r.Witness.Check)
				}
			}
		}
	} else {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "codeaudit:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			fmt.Fprintln(os.Stderr, "codeaudit: encode:", err)
			os.Exit(1)
		}
	}

	if *failRefuted && rep.Refuted > 0 {
		os.Exit(2)
	}
}

// Command paradbt runs one guest binary under the DBT, with a choice of
// translation strategy, and reports the evaluation metrics.
//
//	go run ./cmd/paradbt -bench mcf -mode para
//	go run ./cmd/paradbt -bench gcc -mode qemu -scale 2
//	go run ./cmd/paradbt -bench sjeng -mode learned -train-all
//
// Modes: qemu (pure TCG), learned (the enhanced learning-based
// baseline), opcode, mode, para (full parameterization + condition-flag
// delegation).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strings"

	"paramdbt/internal/artifact"
	"paramdbt/internal/backend"
	"paramdbt/internal/core"
	"paramdbt/internal/dbt"
	"paramdbt/internal/env"
	"paramdbt/internal/exp"
	"paramdbt/internal/guard/faultinject"
	"paramdbt/internal/guest"
	"paramdbt/internal/learn"
	"paramdbt/internal/mem"
	"paramdbt/internal/obs"
	"paramdbt/internal/rule"
)

// corruptUsedRules runs the benchmark once faultlessly and corrupts up
// to n rules that run actually executed (in deterministic fingerprint
// order). Corrupting used rules rather than arbitrary table entries
// guarantees the fault is live — the point of a -inject campaign with
// corruptRules is to watch shadow verification catch it.
func corruptUsedRules(corpus *exp.Corpus, bench string, cfg dbt.Config, n int) ([]string, error) {
	m := mem.New()
	if _, err := corpus.Comp[bench].LoadGuest(m); err != nil {
		return nil, err
	}
	e := dbt.New(m, cfg)
	init := &guest.State{Mem: m}
	init.R[guest.SP] = env.StackTop
	e.SetGuestState(init)
	if _, err := e.Run(env.CodeBase, 4_000_000_000); err != nil {
		return nil, fmt.Errorf("warm run for rule corruption: %w", err)
	}
	return faultinject.CorruptTemplates(e.CachedRuleTemplates(), n), nil
}

// serveMetrics starts the observability endpoint: the obs.Default JSON
// snapshot on /metrics, the trace-ring dump on /trace, and the standard
// pprof profiles under /debug/pprof/. It returns once the listener is
// bound so a scrape can never race the run starting.
func serveMetrics(addr string) error {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Default.Handler())
	mux.Handle("/trace", obs.Default.TraceHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "metrics server:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", ln.Addr())
	return nil
}

// dump re-translates the benchmark's entry blocks and prints their
// listings.
func dump(corpus *exp.Corpus, bench string, cfg dbt.Config, n int) error {
	m := mem.New()
	comp := corpus.Comp[bench]
	if _, err := comp.LoadGuest(m); err != nil {
		return err
	}
	e := dbt.New(m, cfg)
	init := &guest.State{Mem: m}
	init.R[guest.SP] = env.StackTop
	e.SetGuestState(init)
	pc := uint32(env.CodeBase)
	for i := 0; i < n; i++ {
		s, err := e.BlockListing(pc)
		if err != nil {
			return err
		}
		fmt.Println(s)
		// Walk forward past this block (next sequential block start).
		insts := 0
		for {
			in, err := guest.Decode(m.Read32(pc + uint32(insts*guest.InstBytes)))
			if err != nil {
				return err
			}
			insts++
			if in.IsBranch() {
				break
			}
		}
		pc += uint32(insts * guest.InstBytes)
	}
	return nil
}

func main() {
	bench := flag.String("bench", "mcf", "benchmark name (see -list)")
	mode := flag.String("mode", "para", "qemu | learned | opcode | mode | para")
	scale := flag.Int("scale", 1, "dynamic work multiplier")
	trainAll := flag.Bool("train-all", false, "train on all 12 benchmarks instead of leave-one-out")
	list := flag.Bool("list", false, "list benchmarks and exit")
	rulesPath := flag.String("rules", "", "load the rule table from this file (JSON Lines, see rulegen -o) instead of training")
	manual := flag.Bool("manual", false, "add the manual ABI/special-instruction translations (paper §V-B2)")
	dumpBlocks := flag.Int("dump-blocks", 0, "print the first N translated blocks (guest disassembly + host listing)")
	workers := flag.Int("workers", 0, "background translation workers (speculative successor translation)")
	noChain := flag.Bool("no-chain", false, "disable translation-block chaining (dispatch every block boundary)")
	hotThreshold := flag.Uint64("hot-threshold", 0, "form hot-trace superblocks once a block's entry count crosses this threshold (0 disables formation; needs chaining)")
	traceMax := flag.Int("trace-max", 0, "cap trace growth at this many basic blocks (default 8 when -hot-threshold is set)")
	traceBudget := flag.Int("trace-budget", 0, "cap how many traces the engine may form (0 = unlimited)")
	syncTraces := flag.Bool("sync-traces", false, "translate traces on the dispatch loop instead of the background builder (deterministic, but formation latency stalls the run)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (JSON snapshot), /trace and /debug/pprof on this address (e.g. :6060); enables telemetry")
	traceN := flag.Int("trace", 0, "record the last N block transitions in a ring buffer, dumped to stderr after the run and on panic")
	shadowRate := flag.Float64("shadow-rate", 0, "shadow-verify this fraction of block executions against the reference interpreter (1 = every execution)")
	quarFile := flag.String("quarantine-file", "", "load previously quarantined rules from this file before the run and persist the quarantine set after it (JSON Lines)")
	injectPath := flag.String("inject", "", "fault-injection plan (JSON, see docs/ROBUSTNESS.md); corruptRules entries are applied to rules the benchmark actually uses")
	beName := flag.String("backend", "", "host backend to translate for (default: $"+backend.EnvVar+" or x86); one of "+strings.Join(backend.Names(), ","))
	artifactDir := flag.String("artifact-dir", "", "warm-start artifact store: reuse a previously published rule pack instead of re-deriving, restore the code cache from a prior run of the same guest, and publish both back on a clean halt (see docs/PERSISTENCE.md)")
	peephole := flag.Bool("peephole", false, "enable the backend's post-Finalize peephole optimizer; the optimized stream is installed only when the translation validator proves it equivalent (see docs/ANALYSIS.md)")
	validate := flag.String("validate", "", "translation validation: \"optimized\" validates only peephole candidates (the default when -peephole is set), \"all\" validates every finalized translation, \"off\" disables")
	flag.Parse()

	switch *validate {
	case "", "off", "optimized", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown -validate mode %q (want off, optimized or all)\n", *validate)
		os.Exit(1)
	}

	be := backend.Default()
	if *beName != "" {
		var err error
		be, err = backend.Lookup(*beName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	corpus, err := exp.BuildCorpus(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *list {
		for _, n := range corpus.Names {
			fmt.Println(n)
		}
		return
	}
	if _, ok := corpus.Comp[*bench]; !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (try -list)\n", *bench)
		os.Exit(1)
	}

	switch *mode {
	case "qemu", "learned", "opcode", "mode", "para":
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}

	train := corpus.Others(*bench)
	if *trainAll {
		train = corpus.Names
	}

	var artStore *artifact.Store
	if *artifactDir != "" {
		var err error
		artStore, err = artifact.Open(*artifactDir, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var cfg dbt.Config
	cfg.ArtifactDir = *artifactDir
	if *rulesPath != "" {
		f, err := os.Open(*rulesPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Rules, err = rule.Load(f, false)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else if *mode != "qemu" {
		// The pack key names everything that determines the rule table:
		// backend, engine version, derivation mode, and the training set
		// (leave-one-out packs exclude the benchmark under test, so they
		// are keyed per benchmark). Anything else is a miss and the table
		// is re-derived from the training binaries as usual.
		trainTag := "loo-" + *bench
		if *trainAll {
			trainTag = "all"
		}
		packKey := artifact.Key{
			Backend: be.ID(),
			Version: dbt.EngineVersion + "#mode=" + *mode + "#train=" + trainTag,
		}
		if artStore != nil {
			if payload, res := artStore.Get(artifact.KindRulePack, packKey); res == artifact.Hit {
				rules, istats, err := learn.ImportPack(bytes.NewReader(payload), false)
				if err != nil {
					artStore.MarkReject()
					fmt.Fprintln(os.Stderr, "artifact: rule pack rejected:", err)
				} else {
					cfg.Rules = rules
					fmt.Fprintf(os.Stderr, "artifact: rule pack hit (%d rules imported, %d gate-rejected)\n",
						istats.Loaded, istats.GateRejected)
				}
			}
		}
		if cfg.Rules == nil {
			union := corpus.Union(train)
			switch *mode {
			case "learned":
				cfg.Rules = union
			case "opcode":
				cfg.Rules, _ = core.Parameterize(union, core.Config{Opcode: true})
			case "mode", "para":
				cfg.Rules, _ = core.Parameterize(union, core.Config{Opcode: true, AddrMode: true})
			}
			if artStore != nil {
				var buf bytes.Buffer
				err := cfg.Rules.Save(&buf)
				if err == nil {
					err = artStore.Put(artifact.KindRulePack, packKey, buf.Bytes())
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "artifact: rule pack publish failed:", err)
				} else {
					fmt.Fprintf(os.Stderr, "artifact: published rule pack (%d rules)\n", cfg.Rules.Len())
				}
			}
		}
	}
	if *mode == "para" || *rulesPath != "" {
		cfg.DelegateFlags = true
	}
	cfg.Backend = be
	cfg.ManualABI = *manual
	cfg.TranslateWorkers = *workers
	cfg.NoChain = *noChain
	cfg.HotThreshold = *hotThreshold
	cfg.TraceMaxBlocks = *traceMax
	cfg.TraceBudget = *traceBudget
	cfg.SyncTraces = *syncTraces
	cfg.ShadowRate = *shadowRate
	cfg.Peephole = *peephole
	cfg.Validate = *validate

	if *quarFile != "" {
		if cfg.Rules == nil {
			fmt.Fprintln(os.Stderr, "-quarantine-file requires a rule table (a non-qemu mode or -rules)")
			os.Exit(1)
		}
		if f, err := os.Open(*quarFile); err == nil {
			entries, lerr := rule.LoadQuarantine(f)
			f.Close()
			if lerr != nil {
				fmt.Fprintln(os.Stderr, lerr)
				os.Exit(1)
			}
			n := cfg.Rules.ApplyQuarantine(entries)
			fmt.Fprintf(os.Stderr, "quarantine: re-demoted %d of %d persisted rules\n", n, len(entries))
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var inj *faultinject.Injector
	if *injectPath != "" {
		plan, err := faultinject.LoadPlan(*injectPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		inj = faultinject.New(plan)
		if plan.CorruptRules > 0 {
			if cfg.Rules == nil {
				fmt.Fprintln(os.Stderr, "plan corrupts rules but no rule table is loaded")
				os.Exit(1)
			}
			// Warm run without faults or shadowing to find the used rules.
			warmCfg := cfg
			warmCfg.ShadowRate = 0
			fps, err := corruptUsedRules(corpus, *bench, warmCfg, plan.CorruptRules)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "inject: corrupted %d used rule(s)\n", len(fps))
			if cfg.ShadowRate == 0 {
				// Silent corruption without shadow verification would just
				// produce wrong results; catching it is the experiment.
				cfg.ShadowRate = 1
				fmt.Fprintln(os.Stderr, "inject: enabling -shadow-rate 1 to detect corrupted rules")
			}
		}
		cfg.Faults = inj
	}

	var ring *obs.TraceRing
	if *traceN > 0 {
		ring = obs.NewTraceRing(*traceN)
		cfg.Trace = ring
	}
	if *metricsAddr != "" {
		obs.SetEnabled(true)
		cfg.Metrics = obs.Default
		if err := serveMetrics(*metricsAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	res, err := corpus.Run(*bench, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *dumpBlocks > 0 {
		if err := dump(corpus, *bench, cfg, *dumpBlocks); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	st := res.Stats
	fmt.Printf("benchmark          %s (mode %s, scale %d, backend %s)\n", *bench, *mode, *scale, be.Name())
	fmt.Printf("guest instructions %d\n", st.GuestExec)
	fmt.Printf("host instructions  %d (%.2f per guest)\n", res.Total,
		float64(res.Total)/float64(st.GuestExec))
	fmt.Printf("  compute          %d\n", res.Executed[0])
	fmt.Printf("  data transfer    %d\n", res.Executed[1])
	fmt.Printf("  control          %d\n", res.Executed[2])
	fmt.Printf("dynamic coverage   %.1f%%\n", 100*st.Coverage())
	fmt.Printf("translated blocks  %d\n", st.Blocks)
	fmt.Printf("dispatches         %d\n", st.Dispatches)
	fmt.Printf("chained exits      %d (%.1f%% of block transitions)\n", st.ChainedExits, 100*st.ChainRate())
	if cfg.Rules != nil {
		fmt.Printf("rule table size    %d\n", cfg.Rules.Len())
	}
	if cfg.Peephole || (cfg.Validate != "" && cfg.Validate != "off") {
		fmt.Printf("blocks validated   %d\n", st.BlocksValidated)
		fmt.Printf("validate fallbacks %d\n", st.ValidateFallbacks)
	}
	if cfg.HotThreshold > 0 {
		fmt.Printf("traces formed      %d\n", st.TracesFormed)
		fmt.Printf("superblock execs   %d (%.1f%% of block entries)\n", st.SuperblockExecs, 100*st.SuperblockShare())
		fmt.Printf("side exits         %d (%.1f%% of superblock execs)\n", st.SideExits, 100*st.SideExitRate())
	}
	if *artifactDir != "" {
		w := res.Warm
		if w.Err != "" {
			fmt.Fprintln(os.Stderr, "artifact:", w.Err)
		}
		fmt.Printf("warm start         %d blocks, %d traces restored (%d hit, %d miss, %d reject, %d quarantined)\n",
			w.Blocks, w.Traces, w.Hits, w.Misses, w.Rejects, w.Quarantined)
		fmt.Printf("demand translations %d\n", st.Translations)
	}
	if cfg.ShadowRate > 0 || cfg.Faults != nil {
		fmt.Printf("shadow checks      %d\n", st.ShadowChecks)
		fmt.Printf("divergences        %d\n", st.Divergences)
		fmt.Printf("quarantined rules  %d\n", st.QuarantinedRules)
		fmt.Printf("panics recovered   %d\n", st.PanicsRecovered)
		fmt.Printf("interp fallbacks   %d\n", st.InterpFallbacks)
		if inj != nil {
			p, d, sh, w := inj.Counts()
			fmt.Printf("injected faults    %d panics, %d decode errors, %d shard drops, %d worker kills\n", p, d, sh, w)
		}
	}
	if *quarFile != "" && cfg.Rules != nil {
		// Serialize to memory and write-temp-then-rename: a crash mid-write
		// must leave the previous quarantine file intact, never a torn one
		// that silently drops demotions on the next run.
		entries := cfg.Rules.Quarantined()
		var buf bytes.Buffer
		if err := rule.SaveQuarantine(&buf, entries); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := artifact.WriteFileAtomic(*quarFile, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "quarantine: persisted %d rule(s) to %s\n", len(entries), *quarFile)
	}
	if len(st.UncoveredOps) > 0 {
		type kv struct {
			op guest.Op
			n  uint64
		}
		var ops []kv
		for op, n := range st.UncoveredOps {
			ops = append(ops, kv{op, n})
		}
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].n != ops[j].n {
				return ops[i].n > ops[j].n
			}
			return ops[i].op < ops[j].op
		})
		fmt.Printf("emulated (top):   ")
		for i, e := range ops {
			if i == 6 {
				break
			}
			fmt.Printf(" %s=%.1f%%", e.op, 100*float64(e.n)/float64(st.GuestExec))
		}
		fmt.Println()
	}

	if ring != nil {
		ring.Dump(os.Stderr)
	}
}

// Command experiments regenerates every table and figure of the paper's
// evaluation section from the synthetic SPEC CINT 2006 stand-ins.
//
//	go run ./cmd/experiments            # everything, scale 1
//	go run ./cmd/experiments -scale 3   # longer "reference input"
//	go run ./cmd/experiments -only fig14,table3
//	go run ./cmd/experiments -json results.json
//
// With -json, every selected section is additionally written as one
// machine-readable report (schema exp.ReportSchema, see
// internal/exp.Report); "-" writes to stdout and suppresses the text
// tables.
//
// -backend routes every engine the suite builds through the named host
// backend (see internal/backend); the "backends" section instead runs
// the workload matrix under every registered backend at shadow rate 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"paramdbt/internal/backend"
	"paramdbt/internal/exp"
)

func main() {
	scale := flag.Int("scale", 1, "dynamic work multiplier (1 = reference input)")
	only := flag.String("only", "", "comma-separated subset: table1,fig2,fig11,fig12,fig13,table2,fig14,fig15,fig16,table3,dispatch,trace,guard,analysis,backends,warmstart,smc,validate,serve")
	serveTenants := flag.Int("serve-tenants", 2, "concurrent tenants per workload in the serve section")
	guardBench := flag.String("guard-bench", "mcf", "benchmark for the guard divergence/recovery experiment")
	jsonPath := flag.String("json", "", "also write the selected sections as a JSON report to this file (\"-\" = stdout, text tables suppressed)")
	beName := flag.String("backend", "", "host backend for all engine runs (default: $"+backend.EnvVar+" or x86); one of "+strings.Join(backend.Names(), ","))
	artifactDir := flag.String("artifact-dir", "", "directory for the warmstart section's artifact store (default: a fresh temporary directory; an already-populated store would make the cold pass warm)")
	validate := flag.String("validate", "", "translation-validation mode for all engine runs: off, optimized, or all (see dbt.Config.Validate)")
	peephole := flag.Bool("peephole", false, "enable the validator-licensed peephole optimizer for all engine runs")
	flag.Parse()

	switch *validate {
	case "", "off", "optimized", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown -validate mode %q (want off, optimized or all)\n", *validate)
		os.Exit(1)
	}

	be := backend.Default()
	if *beName != "" {
		var err error
		be, err = backend.Lookup(*beName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building corpus (compile + learn, scale %d)...\n", *scale)
	corpus, err := exp.BuildCorpus(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corpus:", err)
		os.Exit(1)
	}
	corpus.Backend = be
	corpus.Validate = *validate
	corpus.Peephole = *peephole

	report := &exp.Report{
		Schema:  exp.ReportSchema,
		Date:    time.Now().UTC().Format(time.RFC3339),
		Command: strings.Join(os.Args, " "),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Scale:   *scale,
		Backend: be.Name(),
	}
	text := *jsonPath != "-"
	section := func(title string) {
		if text {
			fmt.Printf("\n==== %s ====\n", title)
		}
	}
	render := func(s string) {
		if text {
			fmt.Print(s)
		}
	}

	if sel("table1") {
		section("Table I: rules learned per benchmark")
		report.Table1 = exp.Table1(corpus)
		render(exp.RenderTable1(report.Table1))
	}
	if sel("fig2") {
		section("Fig 2: learned rules vs training benchmarks")
		report.Fig2 = exp.Fig2(corpus, 1)
		render(exp.RenderFig2(report.Fig2))
	}

	needLOO := sel("fig11") || sel("fig12") || sel("fig13") || sel("table2") ||
		sel("fig14") || sel("fig15") || sel("dispatch") || sel("trace")
	var loo []exp.ModeResults
	if needLOO {
		fmt.Fprintln(os.Stderr, "leave-one-out evaluation (5 configurations x 12 benchmarks)...")
		loo, err = exp.LeaveOneOut(corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "leave-one-out:", err)
			os.Exit(1)
		}
	}
	if sel("fig11") {
		section("Fig 11: speedup over QEMU")
		report.Fig11 = exp.Fig11Data(loo)
		render(exp.RenderFig11(loo))
	}
	if sel("fig12") {
		section("Fig 12: dynamic coverage")
		report.Fig12 = exp.Fig12Data(loo)
		render(exp.RenderFig12(loo))
	}
	if sel("fig13") {
		section("Fig 13: host instructions per guest instruction")
		report.Fig13 = exp.Fig13Data(loo)
		render(exp.RenderFig13(loo))
	}
	if sel("table2") {
		section("Table II: host-instruction breakdown per guest instruction")
		report.Table2 = exp.Table2(loo)
		render(exp.RenderTable2(report.Table2))
	}
	if sel("fig14") {
		section("Fig 14: coverage by parameterization factor")
		report.Fig14 = exp.Fig14Data(loo)
		render(exp.RenderFig14(loo))
	}
	if sel("fig15") {
		section("Fig 15: speedup by parameterization factor")
		report.Fig15 = exp.Fig15Data(loo)
		render(exp.RenderFig15(loo))
	}
	if needLOO {
		section("Uncovered instruction kinds (cf. the paper's seven)")
		report.Uncovered = exp.UncoveredKinds(loo)
		if text {
			fmt.Println(strings.Join(report.Uncovered, ", "))
		}
	}
	if sel("dispatch") {
		section("Dispatch & block chaining (full configuration)")
		report.Dispatch = exp.DispatchData(loo)
		render(exp.RenderDispatch(loo))
	}

	if sel("trace") {
		section("Hot traces: superblock formation & dispatch share")
		tr, err := exp.TraceExperiment(corpus, loo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		report.Trace = tr
		render(exp.RenderTrace(tr))
	}

	if sel("fig16") {
		section("Fig 16: coverage vs training-set size")
		points, err := exp.Fig16(corpus, 8, 5, 7)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig16:", err)
			os.Exit(1)
		}
		report.Fig16 = points
		render(exp.RenderFig16(points))
	}
	if sel("guard") {
		section("Guard: divergence detection & recovery under a corrupted rule")
		g, err := exp.GuardExperiment(corpus, *guardBench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "guard:", err)
			os.Exit(1)
		}
		report.Guard = g
		render(exp.RenderGuard(g))
	}
	if sel("analysis") {
		section("Static audit: rule-store verdicts & seeded corruption")
		a, err := exp.AnalysisExperiment(corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analysis:", err)
			os.Exit(1)
		}
		report.Analysis = a
		render(exp.RenderAnalysis(a))
	}
	if sel("backends") {
		section("Backend matrix: workloads under every host backend, shadow rate 1")
		b, err := exp.BackendsExperiment(corpus, backend.Names(), 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "backends:", err)
			os.Exit(1)
		}
		report.Backends = b
		render(exp.RenderBackends(b))
	}
	if sel("warmstart") {
		section("Warm start: cold vs warm runs against one artifact store")
		dir := *artifactDir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "paramdbt-warmstart-*")
			if err != nil {
				fmt.Fprintln(os.Stderr, "warmstart:", err)
				os.Exit(1)
			}
			defer os.RemoveAll(dir)
		}
		w, err := exp.WarmstartExperiment(corpus, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "warmstart:", err)
			os.Exit(1)
		}
		report.Warmstart = w
		render(exp.RenderWarmstart(w))
	}
	if sel("smc") {
		section("Self-modifying code: engine vs interpreter, shadow rate 1")
		sm, err := exp.SMCExperiment(corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smc:", err)
			os.Exit(1)
		}
		report.Smc = sm
		render(exp.RenderSMC(sm))
	}
	if sel("validate") {
		section("Translation validation: per-backend verdicts & peephole payoff")
		v, err := exp.ValidateExperiment(corpus, backend.Names())
		if err != nil {
			fmt.Fprintln(os.Stderr, "validate:", err)
			os.Exit(1)
		}
		report.Validate = v
		render(exp.RenderValidate(v))
	}
	if sel("serve") {
		section("Multi-tenant serving: shared-service replay vs single-tenant, shadow rate 1")
		sv, err := exp.ServeExperiment(corpus, backend.Names(), *serveTenants)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		report.Serve = sv
		render(exp.RenderServe(sv))
	}
	if sel("table3") {
		section("Table III: rule number comparison")
		counts := exp.Table3(corpus)
		report.Table3 = &counts
		render(exp.RenderTable3(counts))
	}

	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := report.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "json report:", err)
			os.Exit(1)
		}
		if *jsonPath != "-" {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
	}

	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
}

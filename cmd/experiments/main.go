// Command experiments regenerates every table and figure of the paper's
// evaluation section from the synthetic SPEC CINT 2006 stand-ins.
//
//	go run ./cmd/experiments            # everything, scale 1
//	go run ./cmd/experiments -scale 3   # longer "reference input"
//	go run ./cmd/experiments -only fig14,table3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"paramdbt/internal/exp"
)

func main() {
	scale := flag.Int("scale", 1, "dynamic work multiplier (1 = reference input)")
	only := flag.String("only", "", "comma-separated subset: table1,fig2,fig11,fig12,fig13,table2,fig14,fig15,fig16,table3,dispatch")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building corpus (compile + learn, scale %d)...\n", *scale)
	corpus, err := exp.BuildCorpus(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corpus:", err)
		os.Exit(1)
	}

	section := func(title string) { fmt.Printf("\n==== %s ====\n", title) }

	if sel("table1") {
		section("Table I: rules learned per benchmark")
		fmt.Print(exp.RenderTable1(exp.Table1(corpus)))
	}
	if sel("fig2") {
		section("Fig 2: learned rules vs training benchmarks")
		fmt.Print(exp.RenderFig2(exp.Fig2(corpus, 1)))
	}

	needLOO := sel("fig11") || sel("fig12") || sel("fig13") || sel("table2") ||
		sel("fig14") || sel("fig15") || sel("dispatch")
	var loo []exp.ModeResults
	if needLOO {
		fmt.Fprintln(os.Stderr, "leave-one-out evaluation (5 configurations x 12 benchmarks)...")
		loo, err = exp.LeaveOneOut(corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "leave-one-out:", err)
			os.Exit(1)
		}
	}
	if sel("fig11") {
		section("Fig 11: speedup over QEMU")
		fmt.Print(exp.RenderFig11(loo))
	}
	if sel("fig12") {
		section("Fig 12: dynamic coverage")
		fmt.Print(exp.RenderFig12(loo))
	}
	if sel("fig13") {
		section("Fig 13: host instructions per guest instruction")
		fmt.Print(exp.RenderFig13(loo))
	}
	if sel("table2") {
		section("Table II: host-instruction breakdown per guest instruction")
		fmt.Print(exp.RenderTable2(exp.Table2(loo)))
	}
	if sel("fig14") {
		section("Fig 14: coverage by parameterization factor")
		fmt.Print(exp.RenderFig14(loo))
	}
	if sel("fig15") {
		section("Fig 15: speedup by parameterization factor")
		fmt.Print(exp.RenderFig15(loo))
	}
	if needLOO {
		section("Uncovered instruction kinds (cf. the paper's seven)")
		fmt.Println(strings.Join(exp.UncoveredKinds(loo), ", "))
	}
	if sel("dispatch") {
		section("Dispatch & block chaining (full configuration)")
		fmt.Print(exp.RenderDispatch(loo))
	}

	if sel("fig16") {
		section("Fig 16: coverage vs training-set size")
		points, err := exp.Fig16(corpus, 8, 5, 7)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig16:", err)
			os.Exit(1)
		}
		fmt.Print(exp.RenderFig16(points))
	}
	if sel("table3") {
		section("Table III: rule number comparison")
		fmt.Print(exp.RenderTable3(exp.Table3(corpus)))
	}

	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
}

// Command rulegen runs the offline rule-generation pipeline: compile the
// training benchmarks, learn rules, parameterize them, and dump the
// resulting rule table with the Table III accounting.
//
//	go run ./cmd/rulegen                      # train on all benchmarks
//	go run ./cmd/rulegen -exclude gcc         # leave-one-out set
//	go run ./cmd/rulegen -opcode=false        # disable a dimension
//	go run ./cmd/rulegen -dump                # print every rule
package main

import (
	"flag"
	"fmt"
	"os"

	"paramdbt/internal/core"
	"paramdbt/internal/exp"
	"paramdbt/internal/rule"
)

func main() {
	exclude := flag.String("exclude", "", "benchmark to leave out of training")
	opcode := flag.Bool("opcode", true, "enable opcode parameterization")
	mode := flag.Bool("mode", true, "enable addressing-mode parameterization")
	dump := flag.Bool("dump", false, "print every rule in the final table")
	out := flag.String("o", "", "write the final rule table (JSON Lines) to this file")
	flag.Parse()

	corpus, err := exp.BuildCorpus(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	names := corpus.Names
	if *exclude != "" {
		names = corpus.Others(*exclude)
		if len(names) == len(corpus.Names) {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *exclude)
			os.Exit(1)
		}
	}

	fmt.Println("== learning funnel (Table I) ==")
	fmt.Print(exp.RenderTable1(exp.Table1(corpus)))

	union := corpus.Union(names)
	table, counts := core.Parameterize(union, core.Config{Opcode: *opcode, AddrMode: *mode})

	fmt.Println("\n== rule accounting (Table III) ==")
	fmt.Print(exp.RenderTable3(counts))
	fmt.Printf("derived: %d  rejected by verifier: %d\n", counts.Derived, counts.Rejected)

	fmt.Println("\n== rule table by origin ==")
	for origin, n := range table.CountByOrigin() {
		fmt.Printf("%-14v %d\n", rule.Origin(origin), n)
	}

	if *dump {
		fmt.Println("\n== rules ==")
		fmt.Print(table.Dump())
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := table.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d rules to %s\n", table.Len(), *out)
	}
}

// Command ruleaudit statically audits the full parameterized rule
// space: it learns rules from every workload benchmark, parameterizes
// them (opcode + addressing mode, the paper's full configuration), and
// pushes the whole store through internal/analysis — dataflow passes
// plus abstract-domain equivalence over the symbolic immediate
// parameters. The result is one JSON report with a verdict per rule:
//
//	sound         proved over the whole parameter domain (the report
//	              names the proof: structural, abstract, or sweep)
//	unsound       a concrete witness instantiation is included, and has
//	              been confirmed divergent by symexec's concrete replay
//	inconclusive  neither proved nor refuted (candidates for elevated
//	              shadow-verification rates, see docs/ROBUSTNESS.md)
//
//	go run ./cmd/ruleaudit                 # audit, JSON to stdout
//	go run ./cmd/ruleaudit -o audit.json   # write to a file
//	go run ./cmd/ruleaudit -summary        # verdict counts only (text)
//	go run ./cmd/ruleaudit -inject 2       # corrupt 2 rules first (demo)
//	go run ./cmd/ruleaudit -fail-unsound   # exit 2 if anything is unsound
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"paramdbt/internal/analysis"
	"paramdbt/internal/backend"
	"paramdbt/internal/core"
	"paramdbt/internal/exp"
	"paramdbt/internal/guard/faultinject"
	"paramdbt/internal/rule"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale used while learning (1 = reference input)")
	out := flag.String("o", "", "write the JSON report to this file instead of stdout")
	summary := flag.Bool("summary", false, "print verdict counts as text instead of the JSON report")
	inject := flag.Int("inject", 0, "corrupt this many learned rules before auditing (fault-injection demo)")
	failUnsound := flag.Bool("fail-unsound", false, "exit with status 2 when any rule audits unsound")
	beName := flag.String("backend", "", "host backend to audit under (default: $"+backend.EnvVar+" or x86)")
	flag.Parse()

	be := backend.Default()
	if *beName != "" {
		var err error
		be, err = backend.Lookup(*beName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ruleaudit:", err)
			os.Exit(1)
		}
	}

	corpus, err := exp.BuildCorpus(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ruleaudit: corpus:", err)
		os.Exit(1)
	}
	union := corpus.Union(corpus.Names)
	store, _ := core.Parameterize(union, core.Config{Opcode: true, AddrMode: true})

	if *inject > 0 {
		fps := faultinject.CorruptTemplates(store.All(), *inject)
		fmt.Fprintf(os.Stderr, "ruleaudit: corrupted %d rule(s)\n", len(fps))
		// The store indexes templates by their pre-corruption
		// fingerprints; rebuild so report fingerprints match the table —
		// the same thing loading a corrupted table from disk would do.
		fresh := rule.NewStore()
		for _, tm := range store.All() {
			fresh.Add(tm)
		}
		store = fresh
	}

	rep := analysis.AuditStoreWith(store, be)
	fmt.Fprintf(os.Stderr, "ruleaudit: backend %s: %d rules: %d sound, %d unsound, %d inconclusive\n",
		rep.Backend, rep.Total, rep.Sound, rep.Unsound, rep.Inconclusive)

	if *summary {
		fmt.Printf("rules        %d\n", rep.Total)
		fmt.Printf("sound        %d\n", rep.Sound)
		for _, p := range []analysis.Proof{analysis.ProofStructural, analysis.ProofAbstract, analysis.ProofSweep} {
			if n := rep.ByProof[p]; n > 0 {
				fmt.Printf("  by %-10s %d\n", p, n)
			}
		}
		fmt.Printf("unsound      %d\n", rep.Unsound)
		for _, rr := range rep.Rules {
			if rr.Verdict == analysis.VerdictUnsound {
				fmt.Printf("  %s\n    witness: %s at imms %v\n", rr.Rule, rr.Witness.Check, rr.Witness.Imms)
			}
		}
		fmt.Printf("inconclusive %d\n", rep.Inconclusive)
	} else {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ruleaudit:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "ruleaudit: encode:", err)
			os.Exit(1)
		}
	}

	if *failUnsound && rep.Unsound > 0 {
		os.Exit(2)
	}
}

// Command paradbtd is the multi-tenant translation server daemon: one
// shared translation service (rule store, prototype cache, batched
// translation queue) serving workload runs for any number of tenants
// over HTTP. See docs/SERVING.md.
//
//	go run ./cmd/paradbtd -addr :8921
//	curl 'localhost:8921/run?bench=mcf&tenants=64'
//	curl localhost:8921/metrics
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests finish, the
// translation queue drains, and the final metrics snapshot is written
// to stderr (or -flush).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paramdbt/internal/backend"
	"paramdbt/internal/obs"
	"paramdbt/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8921", "listen address")
	scale := flag.Int("scale", 1, "workload dynamic-work multiplier")
	workers := flag.Int("workers", 0, "translation workers (0 = service default)")
	queue := flag.Int("queue", 0, "demand queue depth (0 = service default)")
	shadowRate := flag.Float64("shadow-rate", 1, "tenant starting shadow-verification rate")
	noAdaptive := flag.Bool("no-adaptive", false, "disable the per-tenant adaptive guard controller")
	halfLife := flag.Uint64("shadow-half-life", 0, "clean checks per rate halving (0 = default)")
	backendName := flag.String("backend", "", "host backend (default: "+backend.Default().Name()+")")
	flushPath := flag.String("flush", "", "write the shutdown metrics snapshot here (default stderr)")
	flag.Parse()

	if err := run(*addr, *scale, *workers, *queue, *shadowRate, *noAdaptive, *halfLife, *backendName, *flushPath); err != nil {
		fmt.Fprintln(os.Stderr, "paradbtd:", err)
		os.Exit(1)
	}
}

func run(addr string, scale, workers, queue int, shadowRate float64, noAdaptive bool, halfLife uint64, backendName, flushPath string) error {
	obs.SetEnabled(true)

	var be backend.Backend
	if backendName != "" {
		var err error
		if be, err = backend.Lookup(backendName); err != nil {
			return err
		}
	}
	var flushTo io.Writer = os.Stderr
	if flushPath != "" {
		f, err := os.Create(flushPath)
		if err != nil {
			return err
		}
		defer f.Close()
		flushTo = f
	}

	srv, err := serve.NewServer(serve.Config{
		Scale:          scale,
		Workers:        workers,
		QueueDepth:     queue,
		ShadowRate:     shadowRate,
		NoShadow:       shadowRate == 0,
		NoAdaptive:     noAdaptive,
		ShadowHalfLife: halfLife,
		Backend:        be,
		FlushTo:        flushTo,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "paradbtd serving %d workloads on http://%s/run\n",
		len(srv.Benches()), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "paradbtd: %v, draining\n", s)
	case err := <-errc:
		srv.Close()
		return err
	}

	// Graceful shutdown: stop accepting, let in-flight /run requests
	// finish, then drain the translation queue and flush final stats.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	return srv.Close()
}
